// Package blobstore is a content-addressed chunk store: immutable blobs
// keyed by their SHA-256. It is the storage substrate of the delivery
// layer — game packages are split into chunks at video-segment boundaries
// (see gamepack.Manifest), so identical segments shared by several courses
// are stored and transferred exactly once, and a course edit invalidates
// only the chunks whose bytes actually changed.
//
// A Store layers a lock-striped LRU hot-chunk cache over a pluggable
// Backend (in-memory or on-disk). Reads served from the hot tier are
// allocation-free; reads that fall through to the backend are verified
// against their address before they are returned, so a corrupted disk (or
// a tampered cache directory) can never hand bytes to a decoder. A Store
// may also run cache-only (no backend): that shape is the client-side
// chunk cache, where eviction is harmless because any chunk can be
// refetched by hash.
package blobstore

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// HashSize is the size of a chunk address in bytes.
const HashSize = sha256.Size

// Hash is a chunk address: the SHA-256 of the chunk's bytes.
type Hash [HashSize]byte

// Sum computes the address of a chunk.
func Sum(data []byte) Hash { return sha256.Sum256(data) }

// String renders the address as lowercase hex.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// ParseHash decodes a 64-character hex address.
func ParseHash(s string) (Hash, error) {
	var h Hash
	if len(s) != 2*HashSize {
		return h, fmt.Errorf("blobstore: bad hash length %d", len(s))
	}
	if _, err := hex.Decode(h[:], []byte(s)); err != nil {
		return h, fmt.Errorf("blobstore: bad hash: %w", err)
	}
	return h, nil
}

// ErrNotFound reports that no chunk with the requested address is stored.
var ErrNotFound = errors.New("blobstore: chunk not found")

// ErrCorrupt reports that stored bytes no longer match their address.
var ErrCorrupt = errors.New("blobstore: chunk bytes do not match their hash")

// BackendStats counts what a backend holds.
type BackendStats struct {
	Chunks int
	Bytes  int64
}

// Backend is the durable tier under a Store. Implementations must be safe
// for concurrent use. Get may return a slice the caller must treat as
// read-only.
type Backend interface {
	// Put stores a chunk, reporting whether it was new (false = dedup hit).
	Put(h Hash, data []byte) (added bool, err error)
	Get(h Hash) ([]byte, error)
	Has(h Hash) (bool, error)
	Remove(h Hash) error
	Stats() BackendStats
}

// --- in-memory backend ------------------------------------------------------

// Memory is a map-backed Backend. Put copies, so callers may hand it
// slices of larger buffers without pinning them.
type Memory struct {
	mu    sync.RWMutex
	m     map[Hash][]byte
	bytes int64
}

// NewMemory creates an empty in-memory backend.
func NewMemory() *Memory { return &Memory{m: map[Hash][]byte{}} }

// Put implements Backend.
func (b *Memory) Put(h Hash, data []byte) (bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.m[h]; ok {
		return false, nil
	}
	b.m[h] = append([]byte(nil), data...)
	b.bytes += int64(len(data))
	return true, nil
}

// Get implements Backend.
func (b *Memory) Get(h Hash) ([]byte, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	data, ok := b.m[h]
	if !ok {
		return nil, ErrNotFound
	}
	return data, nil
}

// Has implements Backend.
func (b *Memory) Has(h Hash) (bool, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	_, ok := b.m[h]
	return ok, nil
}

// Remove implements Backend.
func (b *Memory) Remove(h Hash) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if data, ok := b.m[h]; ok {
		b.bytes -= int64(len(data))
		delete(b.m, h)
	}
	return nil
}

// Stats implements Backend.
func (b *Memory) Stats() BackendStats {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return BackendStats{Chunks: len(b.m), Bytes: b.bytes}
}

// --- on-disk backend --------------------------------------------------------

// Disk stores each chunk as a file named by its hex address, fanned out
// over 256 prefix directories (ab/abcdef...). Writes go through a temp
// file and rename, so a crash never leaves a half-written chunk under a
// valid address.
type Disk struct {
	dir string

	mu     sync.Mutex
	chunks int
	bytes  int64
}

// NewDisk opens (creating if needed) an on-disk backend rooted at dir and
// scans it so Stats reflects chunks left by previous runs.
func NewDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("blobstore: %w", err)
	}
	b := &Disk{dir: dir}
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || len(d.Name()) != 2*HashSize {
			return err
		}
		if info, err := d.Info(); err == nil {
			b.chunks++
			b.bytes += info.Size()
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("blobstore: scanning %s: %w", dir, err)
	}
	return b, nil
}

func (b *Disk) path(h Hash) string {
	name := h.String()
	return filepath.Join(b.dir, name[:2], name)
}

// Put implements Backend. The whole check-write-rename sequence runs
// under the lock: two concurrent Puts of the same chunk must resolve to
// one addition, or the counters drift from the files (writes happen at
// publish time, so serializing them costs nothing that matters).
func (b *Disk) Put(h Hash, data []byte) (bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	path := b.path(h)
	if _, err := os.Stat(path); err == nil {
		return false, nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return false, fmt.Errorf("blobstore: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return false, fmt.Errorf("blobstore: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return false, fmt.Errorf("blobstore: %w", werr)
	}
	b.chunks++
	b.bytes += int64(len(data))
	return true, nil
}

// Get implements Backend.
func (b *Disk) Get(h Hash) ([]byte, error) {
	data, err := os.ReadFile(b.path(h))
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("blobstore: %w", err)
	}
	return data, nil
}

// Has implements Backend.
func (b *Disk) Has(h Hash) (bool, error) {
	_, err := os.Stat(b.path(h))
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("blobstore: %w", err)
	}
	return true, nil
}

// Remove implements Backend.
func (b *Disk) Remove(h Hash) error {
	info, err := os.Stat(b.path(h))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("blobstore: %w", err)
	}
	if err := os.Remove(b.path(h)); err != nil {
		return fmt.Errorf("blobstore: %w", err)
	}
	b.mu.Lock()
	b.chunks--
	b.bytes -= info.Size()
	b.mu.Unlock()
	return nil
}

// Stats implements Backend.
func (b *Disk) Stats() BackendStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BackendStats{Chunks: b.chunks, Bytes: b.bytes}
}

// --- store (backend + hot tier) ---------------------------------------------

// DefaultCacheBytes is the hot-tier budget when Options.CacheBytes is 0.
const DefaultCacheBytes = 64 << 20

const defaultShards = 16

// Options configures a Store.
type Options struct {
	// Backend is the durable tier. nil makes the store cache-only: Put
	// inserts into the LRU tier (evictable), Get misses report ErrNotFound
	// — the client-side chunk cache shape, where any chunk can be
	// refetched by hash.
	Backend Backend
	// CacheBytes budgets the hot tier (0 = DefaultCacheBytes, negative =
	// no hot tier; a cache-only store rejects a negative budget).
	CacheBytes int64
	// Shards stripes the hot tier's locks (default 16).
	Shards int
}

// entry is one resident hot chunk on its shard's intrusive LRU list.
type entry struct {
	hash       Hash
	data       []byte
	prev, next *entry
}

// cacheShard is one stripe of the hot tier: its own lock, map and LRU
// list, so concurrent readers of different chunks do not serialize.
type cacheShard struct {
	mu    sync.Mutex
	m     map[Hash]*entry
	head  *entry // most recently used
	tail  *entry // eviction candidate
	bytes int64
}

// Store is a content-addressed chunk store with a hot-chunk cache tier.
// All methods are safe for concurrent use.
type Store struct {
	backend  Backend
	shards   []cacheShard
	perShard int64 // cache budget per shard; <=0 disables the hot tier

	hits        atomic.Int64
	misses      atomic.Int64
	evictions   atomic.Int64
	bytesServed atomic.Int64
	dedupHits   atomic.Int64

	// getHot/getCold are the chunk-get latency histograms. The hot tier
	// serves in tens of nanoseconds, so timing every hit would dominate
	// the path being measured; hotSample admits one hit in 64 (the
	// histogram is a sampled distribution, the hits counter stays exact).
	// Cold gets pay backend I/O and are always timed.
	getHot    *obs.Histogram
	getCold   *obs.Histogram
	hotSample *obs.Sampler
}

// New builds a Store.
func New(o Options) (*Store, error) {
	if o.CacheBytes == 0 {
		o.CacheBytes = DefaultCacheBytes
	}
	if o.Shards <= 0 {
		o.Shards = defaultShards
	}
	if o.Backend == nil && o.CacheBytes < 0 {
		return nil, errors.New("blobstore: cache-only store needs a cache budget")
	}
	s := &Store{
		backend:   o.Backend,
		shards:    make([]cacheShard, o.Shards),
		perShard:  o.CacheBytes / int64(o.Shards),
		getHot:    obs.NewHistogram(obs.LatencyBounds),
		getCold:   obs.NewHistogram(obs.LatencyBounds),
		hotSample: obs.NewSampler(64),
	}
	if o.CacheBytes > 0 && s.perShard == 0 {
		s.perShard = 1 // tiny budgets still cache the newest chunk per shard
	}
	for i := range s.shards {
		s.shards[i].m = map[Hash]*entry{}
	}
	return s, nil
}

// NewCache builds a cache-only store (the client-side shape).
func NewCache(budget int64) *Store {
	s, err := New(Options{CacheBytes: budget})
	if err != nil {
		panic(err) // unreachable: budget 0 defaults, negative rejected above
	}
	return s
}

func (s *Store) shardFor(h Hash) *cacheShard {
	return &s.shards[int(h[0])%len(s.shards)]
}

// unlink removes e from the LRU list; sh.mu must be held.
func (sh *cacheShard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e the most recently used; sh.mu must be held.
func (sh *cacheShard) pushFront(e *entry) {
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

// insert caches a chunk and evicts LRU entries past the budget, sparing
// the chunk just inserted (an oversized chunk may transiently overflow
// the shard rather than thrash). sh.mu must be held.
func (s *Store) insert(sh *cacheShard, h Hash, data []byte) {
	if _, ok := sh.m[h]; ok {
		return
	}
	e := &entry{hash: h, data: data}
	sh.m[h] = e
	sh.pushFront(e)
	sh.bytes += int64(len(data))
	for sh.bytes > s.perShard && sh.tail != nil && sh.tail != e {
		victim := sh.tail
		sh.unlink(victim)
		delete(sh.m, victim.hash)
		sh.bytes -= int64(len(victim.data))
		s.evictions.Add(1)
	}
}

// Put stores a chunk under its own hash and reports the address and
// whether the chunk was new to the store.
func (s *Store) Put(data []byte) (Hash, bool, error) {
	h := Sum(data)
	if s.backend == nil {
		sh := s.shardFor(h)
		sh.mu.Lock()
		_, dup := sh.m[h]
		if !dup {
			s.insert(sh, h, append([]byte(nil), data...))
		}
		sh.mu.Unlock()
		if dup {
			s.dedupHits.Add(1)
		}
		return h, !dup, nil
	}
	added, err := s.backend.Put(h, data)
	if err != nil {
		return h, false, err
	}
	if !added {
		s.dedupHits.Add(1)
	}
	return h, added, nil
}

// Get returns a chunk's bytes. The slice is shared and must be treated as
// read-only. Hot-tier hits are allocation-free; backend reads are
// verified against the address before being served (and cached).
func (s *Store) Get(h Hash) ([]byte, error) {
	sh := s.shardFor(h)
	if s.perShard > 0 || s.backend == nil {
		var t0 time.Time
		sampled := s.hotSample.Tick()
		if sampled {
			t0 = time.Now()
		}
		sh.mu.Lock()
		if e, ok := sh.m[h]; ok {
			if sh.head != e {
				sh.unlink(e)
				sh.pushFront(e)
			}
			sh.mu.Unlock()
			s.hits.Add(1)
			s.bytesServed.Add(int64(len(e.data)))
			if sampled {
				s.getHot.ObserveSince(t0)
			}
			return e.data, nil
		}
		sh.mu.Unlock()
	}
	s.misses.Add(1)
	if s.backend == nil {
		return nil, ErrNotFound
	}
	t0 := time.Now()
	data, err := s.backend.Get(h)
	if err != nil {
		return nil, err
	}
	if Sum(data) != h {
		return nil, fmt.Errorf("%w: %s", ErrCorrupt, h)
	}
	if s.perShard > 0 {
		sh.mu.Lock()
		s.insert(sh, h, data)
		sh.mu.Unlock()
	}
	s.bytesServed.Add(int64(len(data)))
	s.getCold.ObserveSince(t0)
	return data, nil
}

// Has reports whether the store holds a chunk.
func (s *Store) Has(h Hash) bool {
	sh := s.shardFor(h)
	sh.mu.Lock()
	_, ok := sh.m[h]
	sh.mu.Unlock()
	if ok {
		return true
	}
	if s.backend == nil {
		return false
	}
	ok, err := s.backend.Has(h)
	return err == nil && ok
}

// Remove drops a chunk from the hot tier and the backend.
func (s *Store) Remove(h Hash) error {
	sh := s.shardFor(h)
	sh.mu.Lock()
	if e, ok := sh.m[h]; ok {
		sh.unlink(e)
		delete(sh.m, h)
		sh.bytes -= int64(len(e.data))
	}
	sh.mu.Unlock()
	if s.backend == nil {
		return nil
	}
	return s.backend.Remove(h)
}

// Register exposes the store's counters and chunk-get latency histograms
// on a metrics registry. All exported counters are monotonic; the chunk
// and byte totals are gauges (they shrink when chunks are removed). The
// hot-tier histogram is a 1-in-64 sampled distribution — see the field
// comment — while the hits/misses counters remain exact.
func (s *Store) Register(reg *obs.Registry) {
	reg.CounterFunc("blobstore_hits_total", "chunk gets served from the hot tier", s.hits.Load)
	reg.CounterFunc("blobstore_misses_total", "chunk gets that fell through the hot tier", s.misses.Load)
	reg.CounterFunc("blobstore_evictions_total", "hot-tier LRU evictions", s.evictions.Load)
	reg.CounterFunc("blobstore_dedup_hits_total", "puts of chunks the store already held", s.dedupHits.Load)
	reg.CounterFunc("blobstore_bytes_served_total", "chunk bytes handed to readers", s.bytesServed.Load)
	reg.GaugeFunc("blobstore_chunks", "chunks resident in the durable tier", func() int64 { return int64(s.Stats().Chunks) })
	reg.GaugeFunc("blobstore_stored_bytes", "bytes resident in the durable tier", func() int64 { return s.Stats().StoredBytes })
	reg.GaugeFunc("blobstore_cache_bytes", "bytes resident in the hot tier", func() int64 { return s.Stats().CacheBytes })
	reg.RegisterHistogram("blobstore_get_seconds", "chunk get latency by tier (hot is 1/64 sampled)", "seconds", s.getHot, obs.L("tier", "hot"))
	reg.RegisterHistogram("blobstore_get_seconds", "chunk get latency by tier (hot is 1/64 sampled)", "seconds", s.getCold, obs.L("tier", "cold"))
}

// Stats is a counter snapshot of a Store.
type Stats struct {
	Chunks      int   // chunks in the durable tier (hot tier if cache-only)
	StoredBytes int64 // bytes in the durable tier (hot tier if cache-only)
	CacheChunks int
	CacheBytes  int64
	Hits        int64 // gets served from the hot tier
	Misses      int64 // gets that fell through (or missed entirely)
	Evictions   int64 // hot-tier LRU evictions
	BytesServed int64
	DedupHits   int64 // puts of chunks already stored
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	st := Stats{
		Hits:        s.hits.Load(),
		Misses:      s.misses.Load(),
		Evictions:   s.evictions.Load(),
		BytesServed: s.bytesServed.Load(),
		DedupHits:   s.dedupHits.Load(),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		st.CacheChunks += len(sh.m)
		st.CacheBytes += sh.bytes
		sh.mu.Unlock()
	}
	if s.backend != nil {
		bs := s.backend.Stats()
		st.Chunks, st.StoredBytes = bs.Chunks, bs.Bytes
	} else {
		st.Chunks, st.StoredBytes = st.CacheChunks, st.CacheBytes
	}
	return st
}
