package experiments

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/analytics"
	"repro/internal/content"
	"repro/internal/fleet"
	"repro/internal/media/studio"
	"repro/internal/netstream"
	"repro/internal/playsvc"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// E10 measures the networked-classroom deployment under load: fleets of
// concurrent simulated learners fetch the classroom package from a live
// netstream server (ETag-revalidated after the first download), play it,
// and report events through the batching telemetry client. Each row checks
// that the ingested course totals exactly equal the sum of the local
// per-session reports — aggregation must stay lossless under concurrency.
func E10(learners int) (string, error) {
	if learners <= 0 {
		learners = 200
	}
	blob, err := content.Classroom().BuildPackage(studio.Options{QStep: 10})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("E10 — learner-fleet load: concurrent sessions vs one ingest service\n")
	fmt.Fprintf(&b, "classroom package (%d KB) over loopback HTTP; guided policy, 12 steps;\n", len(blob)/1024)
	b.WriteString("telemetry batches of 8 events, 8 ingest workers, queue depth 256\n\n")
	b.WriteString("  learners | sessions/s | events/s | startup p90 | batch p90 | KB sent | 304s | ingest totals\n")
	b.WriteString("  ---------+------------+----------+-------------+-----------+---------+------+--------------\n")

	sweep := []int{learners / 10, learners / 2, learners}
	for _, n := range sweep {
		if n <= 0 {
			continue
		}
		row, err := e10Row(blob, n)
		if err != nil {
			return "", err
		}
		b.WriteString(row)
	}
	b.WriteString("\nshape check: throughput grows with fleet size until the host saturates;\n")
	b.WriteString("transfer stays ~one package total thanks to 304 revalidation; every row\n")
	b.WriteString("must report exact ingest totals — the aggregation pipeline drops nothing.\n")
	return b.String(), nil
}

func e10Row(blob []byte, learners int) (string, error) {
	srv := netstream.NewServer()
	if err := srv.AddPackage("classroom", blob); err != nil {
		return "", err
	}
	svc := telemetry.NewService(telemetry.Options{Workers: 8, QueueDepth: 256})
	defer svc.Close()
	if err := srv.Mount("/telemetry/", svc.Handler()); err != nil {
		return "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Close()

	sum, err := fleet.Run(fleet.Config{
		ServerURL:   "http://" + ln.Addr().String(),
		Package:     "classroom",
		Learners:    learners,
		Concurrency: 64,
		Policy:      sim.GuidedFactory,
		Sim:         sim.Config{MaxSteps: 12, TicksPerStep: 1, Patience: 30},
		FlushEvery:  8,
	})
	if err != nil {
		return "", err
	}
	if sum.Failed > 0 {
		return "", fmt.Errorf("e10: %d learners failed: %v", sum.Failed, sum.Errors)
	}
	if !svc.Quiesce(30 * time.Second) {
		return "", fmt.Errorf("e10: ingest queues did not drain")
	}
	var want analytics.Rolling
	for _, r := range sum.Reports {
		want.Add(r)
	}
	cs := svc.Store().Snapshot()["classroom"]
	match := "exact"
	if cs.SessionsEnded != learners || cs.Events != want.Events ||
		cs.Decisions != want.Decisions || cs.Knowledge != want.Knowledge ||
		cs.Rewards != want.Rewards || cs.Completed != want.Completed {
		match = "MISMATCH"
	}
	return fmt.Sprintf("  %8d | %10.1f | %8.0f | %11v | %9v | %7.1f | %4d | %s\n",
		learners, sum.SessionsPerSec, sum.EventsPerSec,
		sum.Startup.P90.Round(time.Microsecond), sum.Flush.P90.Round(time.Microsecond),
		float64(sum.Fetch.BytesFetched)/1024, sum.Fetch.NotModified, match), nil
}

// E12 compares the two fleet deployment shapes at equal sizes: local
// simulation (PR 1's mode — every learner hosts its own runtime, the
// server only ships packages and ingests telemetry) versus remote play
// (the play service hosts every session server-side and each interaction
// is an HTTP act). Both modes must deliver identical aggregate learning
// outcomes — hosting is a deployment choice, not a pedagogy change — while
// the throughput columns show what moving the runtime to the server costs.
func E12(learners int) (string, error) {
	if learners <= 0 {
		learners = 200
	}
	blob, err := content.Classroom().BuildPackage(studio.Options{QStep: 10})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("E12 — fleet deployment shapes: local simulation vs server-hosted play\n")
	fmt.Fprintf(&b, "classroom package over loopback HTTP; guided policy, 12 steps, seed-locked;\n")
	b.WriteString("remote learners fetch a rendered frame every 4 steps\n\n")
	b.WriteString("  mode        | learners | sessions/s | events/s | session p90 | acts | frames | outcomes\n")
	b.WriteString("  ------------+----------+------------+----------+-------------+------+--------+---------\n")

	sweep := []int{learners / 4, learners}
	var prev *analytics.Rolling
	for _, n := range sweep {
		if n <= 0 {
			continue
		}
		for _, interactive := range []bool{false, true} {
			row, agg, err := e12Row(blob, n, interactive)
			if err != nil {
				return "", err
			}
			match := "—"
			if interactive {
				match = "= local"
				if prev == nil || prev.Events != agg.Events || prev.Knowledge != agg.Knowledge ||
					prev.Completed != agg.Completed || prev.QuizCorrect != agg.QuizCorrect {
					match = "DIVERGED"
				}
			}
			fmt.Fprintf(&b, "%s | %s\n", row, match)
			prev = agg
		}
	}
	b.WriteString("\nshape check: identical outcome columns (same seeds ⇒ same learning, by\n")
	b.WriteString("the golden-replay guarantee); remote throughput is bounded by per-act\n")
	b.WriteString("round trips, which is the price of thin clients — the server's frame\n")
	b.WriteString("path stays allocation-free (BenchmarkPlaysvcAct/frame), so capacity\n")
	b.WriteString("scales with sessions, not with garbage.\n")
	return b.String(), nil
}

func e12Row(blob []byte, learners int, interactive bool) (string, *analytics.Rolling, error) {
	srv := netstream.NewServer()
	if err := srv.AddPackage("classroom", blob); err != nil {
		return "", nil, err
	}
	svc := telemetry.NewService(telemetry.Options{Workers: 8, QueueDepth: 256})
	defer svc.Close()
	if err := srv.Mount("/telemetry/", svc.Handler()); err != nil {
		return "", nil, err
	}
	play := playsvc.NewManager(playsvc.Options{})
	defer play.Close()
	if err := play.AddCourse("classroom", blob); err != nil {
		return "", nil, err
	}
	if err := srv.Mount("/play/", play.Handler()); err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Close()

	simCfg := sim.Config{MaxSteps: 12, TicksPerStep: 1, Patience: 30, Seed: 977}
	if interactive {
		simCfg.WatchEvery = 4
	}
	sum, err := fleet.Run(fleet.Config{
		ServerURL:   "http://" + ln.Addr().String(),
		Package:     "classroom",
		Learners:    learners,
		Concurrency: 64,
		Interactive: interactive,
		Policy:      sim.GuidedFactory,
		Sim:         simCfg,
		FlushEvery:  8,
	})
	if err != nil {
		return "", nil, err
	}
	if sum.Failed > 0 {
		return "", nil, fmt.Errorf("e12: %d learners failed: %v", sum.Failed, sum.Errors)
	}
	if !svc.Quiesce(30 * time.Second) {
		return "", nil, fmt.Errorf("e12: ingest queues did not drain")
	}
	var agg analytics.Rolling
	for _, r := range sum.Reports {
		agg.Add(r)
	}
	mode := "local-sim"
	if interactive {
		mode = "remote-play"
	}
	ps := play.Snapshot()
	if interactive && (ps.SessionsCreated != int64(learners) || ps.SessionsLive != 0) {
		return "", nil, fmt.Errorf("e12: play accounting off: %+v", ps)
	}
	return fmt.Sprintf("  %-11s | %8d | %10.1f | %8.0f | %11v | %4d | %6d",
		mode, learners, sum.SessionsPerSec, sum.EventsPerSec,
		sum.Session.P90.Round(time.Microsecond), ps.Acts, ps.Frames), &agg, nil
}
