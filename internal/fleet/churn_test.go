package fleet

import (
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/netstream"
	"repro/internal/playsvc"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// churnStack brings up the cluster deployment shape: a front server with
// the package catalog and telemetry ingest, plus an n-node play cluster
// behind a gateway. The fleet downloads and reports against the front and
// plays against the gateway.
func churnStack(t *testing.T, nodes int) (front *httptest.Server, gwSrv *httptest.Server, svc *telemetry.Service, cl *playsvc.Cluster) {
	t.Helper()
	srv := netstream.NewServer()
	if err := srv.AddPackage("classroom", classroomBlob(t)); err != nil {
		t.Fatal(err)
	}
	svc = telemetry.NewService(telemetry.Options{Workers: 8, QueueDepth: 256})
	t.Cleanup(svc.Close)
	h := svc.Handler()
	if err := srv.Mount("/telemetry/", h); err != nil {
		t.Fatal(err)
	}
	if err := srv.Mount(telemetry.HealthPath, h); err != nil {
		t.Fatal(err)
	}
	front = httptest.NewServer(srv)
	t.Cleanup(front.Close)

	cl, err := playsvc.NewCluster(playsvc.ClusterOptions{
		Node: playsvc.Options{Shards: 8, TTL: -1, CheckpointEvery: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	if err := cl.AddCourse("classroom", classroomBlob(t)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nodes; i++ {
		if _, err := cl.StartNode(); err != nil {
			t.Fatal(err)
		}
	}
	gwSrv = httptest.NewServer(cl.Gateway().Handler())
	t.Cleanup(gwSrv.Close)
	return front, gwSrv, svc, cl
}

// TestClusterChurnResume is the multi-node scale gate: ≥200 interactive
// learners play through the cluster gateway across 3 nodes while one node
// is taken down mid-run (gracefully — a deploy-style SIGTERM that drains
// every hosted session into the shared store) and a replacement node
// joins. Learners must never notice: zero failed sessions, zero losses,
// and the ingested telemetry totals must equal the sum of the 200 local
// reports exactly — the same bar the single-node fleet test sets.
func TestClusterChurnResume(t *testing.T) {
	front, gwSrv, svc, cl := churnStack(t, 3)
	const learners = 200

	// Churn while the fleet is mid-flight: as soon as a healthy slice of
	// sessions is live, kill one node (drain → freeze → reroute) and then
	// bring a fresh node in (shifting ~1/4 of the id space onto it).
	churned := make(chan string, 1)
	go func() {
		deadline := time.Now().Add(30 * time.Second)
		for cl.Gateway().SessionCount() < 40 && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		victim := cl.NodeNames()[0]
		if err := cl.StopNode(victim); err != nil {
			churned <- "stop " + victim + ": " + err.Error()
			return
		}
		time.Sleep(20 * time.Millisecond)
		if _, err := cl.StartNode(); err != nil {
			churned <- "start replacement: " + err.Error()
			return
		}
		churned <- ""
	}()

	sum, err := Run(Config{
		ServerURL:   front.URL,
		PlayURL:     gwSrv.URL,
		Package:     "classroom",
		Learners:    learners,
		Concurrency: 64,
		Interactive: true,
		Policy:      sim.GuidedFactory,
		Sim:         sim.Config{MaxSteps: 12, TicksPerStep: 1, Patience: 30, WatchEvery: 4},
		FlushEvery:  8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if msg := <-churned; msg != "" {
		t.Fatalf("churn failed: %s", msg)
	}
	// Zero lost sessions: every learner finished, none errored.
	if sum.Failed != 0 {
		t.Fatalf("%d learners failed: %v", sum.Failed, sum.Errors)
	}
	if len(sum.Reports) != learners {
		t.Fatalf("reports = %d", len(sum.Reports))
	}
	if sum.Completed == 0 {
		t.Error("no guided learner completed the mission under churn")
	}

	// The churn actually bit: the gateway created every session, the dead
	// node's sessions were frozen and thawed elsewhere, and nothing is
	// left behind — no live sessions, no tracked ids, no orphaned
	// snapshots in the directory.
	gs := cl.Gateway().Stats()
	if gs.Creates != learners {
		t.Errorf("gateway created %d sessions, want %d", gs.Creates, learners)
	}
	if gs.Cluster.SessionsResumed == 0 {
		t.Error("churn resumed no sessions — the node removal missed the run")
	}
	if gs.Cluster.SessionsLive != 0 || gs.Sessions != 0 {
		t.Errorf("cluster still holds %d live / %d tracked sessions", gs.Cluster.SessionsLive, gs.Sessions)
	}
	if dir, ok := cl.Dir().(*playsvc.MemDir); ok && dir.Len() != 0 {
		t.Errorf("%d snapshots stranded in the directory", dir.Len())
	}

	// Exact telemetry accounting, unchanged from the single-node bar: the
	// ingested course totals equal the sum of the local per-learner
	// reports digested from the events the cluster emitted.
	if !svc.Quiesce(30 * time.Second) {
		t.Fatal("ingest queues did not drain")
	}
	var want analytics.Rolling
	for _, r := range sum.Reports {
		want.Add(r)
	}
	cs := svc.Store().Snapshot()["classroom"]
	if cs.SessionsStarted != learners || cs.SessionsEnded != learners || cs.LiveSessions != 0 {
		t.Fatalf("telemetry session accounting: %+v", cs)
	}
	if cs.Events != want.Events || cs.Decisions != want.Decisions ||
		cs.Knowledge != want.Knowledge || cs.UniqueKnowledge != want.UniqueKnowledge ||
		cs.Rewards != want.Rewards || cs.Completed != want.Completed ||
		cs.Ticks != want.Ticks || cs.QuizAsked != want.QuizAsked ||
		cs.QuizCorrect != want.QuizCorrect {
		t.Errorf("ingested totals diverge from summed reports:\n got %+v\nwant %+v", cs, want)
	}
	if sum.EventsReported != want.Events {
		t.Errorf("events reported = %d, want %d", sum.EventsReported, want.Events)
	}
}
