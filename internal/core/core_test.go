package core

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/media/raster"
)

// tinyProject builds a minimal two-scenario game used across the tests:
// a classroom with a broken computer and a market selling a RAM module.
func tinyProject() *Project {
	p := NewProject("Fix The Computer")
	p.StartScenario = "classroom"
	p.Items = []*ItemDef{
		{ID: "coin", Name: "Coin"},
		{ID: "ram module", Name: "RAM Module", Description: "A DDR2 stick"},
		{ID: "repair-badge", Name: "Repair Badge", Reward: true},
	}
	p.Knowledge = []*KnowledgeUnit{
		{ID: "ram-identification", Topic: "Hardware"},
		{ID: "ram-installation", Topic: "Hardware"},
	}
	p.Missions = []*Mission{
		{ID: "fix", Title: "Fix the computer", DoneFlag: "fixed", Reward: "repair-badge", Knowledge: "ram-installation"},
	}
	p.InitialVars = map[string]int{"score": 0}
	p.Scenarios = []*Scenario{
		{
			ID: "classroom", Name: "Classroom", Segment: "seg-classroom",
			OnEnter: `say "The teacher looks worried.";`,
			Objects: []*Object{
				{
					ID: "teacher", Name: "Teacher", Kind: NPC, Enabled: true,
					Region:   raster.Rect{X: 10, Y: 10, W: 20, H: 30},
					Dialogue: []string{"The computer is dead.", "Can you fix it?"},
				},
				{
					ID: "computer", Name: "Computer", Kind: Hotspot, Enabled: true,
					Region:      raster.Rect{X: 50, Y: 20, W: 25, H: 20},
					Description: "An old beige tower. It will not boot.",
					Events: []Event{
						{Trigger: OnExamine, Script: `say "The RAM slot is empty!"; learn "ram-identification";`},
						{Trigger: OnUse, UseItem: "ram module", Script: `
							take "ram module";
							setflag fixed true;
							reward "repair-badge";
							learn "ram-installation";
							set score = score + 50;
							end "victory";
						`},
						{Trigger: OnClick, Script: `goto "market";`},
					},
				},
			},
		},
		{
			ID: "market", Name: "Market", Segment: "seg-market",
			Objects: []*Object{
				{
					ID: "ram-on-stall", Name: "RAM Module", Kind: Item, Enabled: true, Takeable: true,
					Region: raster.Rect{X: 30, Y: 40, W: 12, H: 8},
					Sprite: SpriteSpec{Shape: "chip", Color: raster.Green},
					Events: []Event{
						{Trigger: OnTake, Script: `give "ram module"; say "Got it."; goto "classroom";`},
					},
				},
			},
		},
	}
	return p
}

func TestProjectLookups(t *testing.T) {
	p := tinyProject()
	if p.ScenarioByID("market") == nil || p.ScenarioByID("nope") != nil {
		t.Error("ScenarioByID wrong")
	}
	if p.ItemByID("coin") == nil || p.ItemByID("gold") != nil {
		t.Error("ItemByID wrong")
	}
	if p.KnowledgeByID("ram-installation") == nil || p.KnowledgeByID("x") != nil {
		t.Error("KnowledgeByID wrong")
	}
	s, o := p.FindObject("ram-on-stall")
	if s == nil || s.ID != "market" || o.Name != "RAM Module" {
		t.Error("FindObject wrong")
	}
	if _, o := p.FindObject("ghost"); o != nil {
		t.Error("FindObject found a ghost")
	}
	sc := p.ScenarioByID("classroom")
	if sc.ObjectByID("computer") == nil || sc.ObjectByID("ram-on-stall") != nil {
		t.Error("ObjectByID wrong")
	}
}

func TestEventFor(t *testing.T) {
	p := tinyProject()
	_, comp := p.FindObject("computer")
	if comp.EventFor(OnExamine, "") == nil {
		t.Error("examine event missing")
	}
	if comp.EventFor(OnUse, "ram module") == nil {
		t.Error("use event missing")
	}
	if comp.EventFor(OnUse, "banana") != nil {
		t.Error("use event matched wrong item")
	}
	if comp.EventFor(OnTake, "") != nil {
		t.Error("phantom take event")
	}
}

func TestProjectJSONRoundTrip(t *testing.T) {
	p := tinyProject()
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := UnmarshalProject(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("project JSON not stable across round trip")
	}
	if q.Title != p.Title || len(q.Scenarios) != 2 {
		t.Error("content lost in round trip")
	}
	if q.Scenarios[0].Objects[1].Events[1].UseItem != "ram module" {
		t.Error("event detail lost")
	}
}

func TestUnmarshalRejectsBadVersion(t *testing.T) {
	if _, err := UnmarshalProject([]byte(`{"version": 99, "title": "x"}`)); err == nil {
		t.Error("future version accepted")
	}
	if _, err := UnmarshalProject([]byte(`{garbage`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestCompileEvents(t *testing.T) {
	p := tinyProject()
	progs, err := p.CompileEvents()
	if err != nil {
		t.Fatal(err)
	}
	// on_enter + examine + use + click + take = 5
	if len(progs) != 5 {
		t.Fatalf("compiled %d programs, want 5", len(progs))
	}
	if progs[EventKey("classroom", "computer", OnUse, "ram module")] == nil {
		t.Error("use event not keyed correctly")
	}
	if progs[EventKey("classroom", "", OnEnter, "")] == nil {
		t.Error("scenario enter not keyed correctly")
	}
	// A broken script fails with the object named.
	p.Scenarios[0].Objects[0].Events = []Event{{Trigger: OnClick, Script: `say ;`}}
	if _, err := p.CompileEvents(); err == nil || !strings.Contains(err.Error(), "teacher") {
		t.Errorf("compile error not attributed: %v", err)
	}
}

func TestStateInventoryMultiset(t *testing.T) {
	s := NewState(tinyProject())
	s.AddItem("coin")
	s.AddItem("coin")
	s.AddItem("ram module")
	if s.CountItem("coin") != 2 || !s.HasItem("ram module") {
		t.Fatal("multiset broken")
	}
	if !s.RemoveItem("coin") || s.CountItem("coin") != 1 {
		t.Fatal("remove first occurrence broken")
	}
	if s.RemoveItem("sword") {
		t.Fatal("removed non-existent item")
	}
	if s.HasItem("sword") {
		t.Fatal("has non-existent item")
	}
}

func TestQuickInventoryInvariant(t *testing.T) {
	// Adding n items then removing them all leaves the inventory empty;
	// counts never go negative.
	err := quick.Check(func(names []uint8) bool {
		s := NewState(tinyProject())
		for _, n := range names {
			s.AddItem(string(rune('a' + n%5)))
		}
		for _, n := range names {
			if !s.RemoveItem(string(rune('a' + n%5))) {
				return false
			}
		}
		return len(s.Inventory) == 0
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewStateInitialization(t *testing.T) {
	p := tinyProject()
	s := NewState(p)
	if s.Scenario != "classroom" || s.Visited["classroom"] != 1 {
		t.Error("start scenario not entered")
	}
	if s.Vars["score"] != 0 {
		t.Error("initial vars missing")
	}
	// Mutating state must not leak into project initial vars.
	s.Vars["score"] = 99
	if p.InitialVars["score"] != 0 {
		t.Error("state aliased project initial vars")
	}
}

func TestStateSaveLoad(t *testing.T) {
	p := tinyProject()
	s := NewState(p)
	s.AddItem("coin")
	s.Flags["fixed"] = true
	s.Learned["ram-installation"] = true
	s.EnterScenario("market")
	s.Hidden["computer"] = true
	data, err := s.Save()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := LoadState(data)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Scenario != "market" || !s2.Flags["fixed"] || !s2.HasItem("coin") {
		t.Error("state lost in save/load")
	}
	if s2.Visited["market"] != 1 || s2.Visited["classroom"] != 1 {
		t.Errorf("visit counts lost: %v", s2.Visited)
	}
	// Minimal saves get usable maps.
	s3, err := LoadState([]byte(`{"scenario": "classroom"}`))
	if err != nil {
		t.Fatal(err)
	}
	s3.Flags["x"] = true // must not panic
	if _, err := LoadState([]byte("{")); err == nil {
		t.Error("bad JSON accepted")
	}
}

func TestStateClone(t *testing.T) {
	s := NewState(tinyProject())
	s.AddItem("coin")
	s.Flags["a"] = true
	c := s.Clone()
	c.AddItem("gem")
	c.Flags["b"] = true
	c.Visited["market"] = 3
	if s.HasItem("gem") || s.Flags["b"] || s.Visited["market"] != 0 {
		t.Fatal("clone shares state with original")
	}
}

func TestObjectVisibility(t *testing.T) {
	p := tinyProject()
	s := NewState(p)
	_, comp := p.FindObject("computer")
	if !s.ObjectVisible(comp) {
		t.Fatal("enabled object should be visible")
	}
	s.Hidden["computer"] = true
	if s.ObjectVisible(comp) {
		t.Fatal("hidden override ignored")
	}
	s.Hidden["computer"] = false
	if !s.ObjectVisible(comp) {
		t.Fatal("explicit un-hide ignored")
	}
}

func TestSinkAppliesEffects(t *testing.T) {
	p := tinyProject()
	s := NewState(p)
	sink := NewSink(p, s)
	var said, popups, opens []string
	sink.OnSay = func(m string) { said = append(said, m) }
	sink.OnPopup = func(k, c string) { popups = append(popups, k+":"+c) }
	sink.OnOpen = func(u string) { opens = append(opens, u) }
	gotoed := ""
	sink.OnGoto = func(sc string) { gotoed = sc }

	sink.Say("hello")
	sink.Give("coin")
	sink.SetFlag("f", true)
	sink.SetVar("score", 10)
	sink.Goto("market")
	sink.Popup("text", "READ ME")
	sink.Learn("ram-identification")
	sink.Reward("repair-badge")
	sink.Open("http://example.com")
	sink.Disable("computer")
	sink.End("victory")

	if len(said) != 1 || s.CountItem("coin") != 1 || !s.Flags["f"] || s.Vars["score"] != 10 {
		t.Error("basic effects failed")
	}
	if gotoed != "market" || s.Scenario != "market" || s.Visited["market"] != 1 {
		t.Error("goto failed")
	}
	if len(popups) != 1 || popups[0] != "text:READ ME" {
		t.Error("popup failed")
	}
	if !s.Learned["ram-identification"] {
		t.Error("learn failed")
	}
	if len(s.Rewards) != 1 || !s.HasItem("repair-badge") {
		t.Error("reward failed")
	}
	if len(opens) != 1 {
		t.Error("open failed")
	}
	if !s.Hidden["computer"] {
		t.Error("disable failed")
	}
	if !s.Ended || s.Outcome != "victory" {
		t.Error("end failed")
	}
	if len(sink.Problems) != 0 {
		t.Errorf("unexpected problems: %v", sink.Problems)
	}
}

func TestSinkSoftErrors(t *testing.T) {
	p := tinyProject()
	s := NewState(p)
	sink := NewSink(p, s)
	sink.Goto("atlantis")           // unknown scenario
	sink.Reward("coin")             // not a reward item
	sink.Reward("excalibur")        // unknown item
	sink.Learn("quantum-mechanics") // unknown unit
	sink.Enable("ghost")            // unknown object
	if len(sink.Problems) != 5 {
		t.Fatalf("problems = %v", sink.Problems)
	}
	if s.Scenario != "classroom" {
		t.Error("bad goto changed scenario")
	}
	if len(s.Rewards) != 0 || len(s.Learned) != 0 {
		t.Error("soft errors mutated state")
	}
}

func TestSinkTake(t *testing.T) {
	p := tinyProject()
	s := NewState(p)
	sink := NewSink(p, s)
	if sink.Take("coin") {
		t.Error("took item not held")
	}
	s.AddItem("coin")
	took := ""
	sink.OnTake = func(i string) { took = i }
	if !sink.Take("coin") || took != "coin" {
		t.Error("take failed")
	}
}

func TestValidateCleanProject(t *testing.T) {
	p := tinyProject()
	probs := p.Validate([]string{"seg-classroom", "seg-market"})
	for _, pr := range probs {
		if pr.Severity == Error {
			t.Errorf("unexpected error: %s", pr)
		}
	}
	if HasErrors(probs) {
		t.Fatal("clean project reported errors")
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Project)
		want   string
	}{
		{"missing start", func(p *Project) { p.StartScenario = "" }, "no start scenario"},
		{"bad start", func(p *Project) { p.StartScenario = "mars" }, "does not exist"},
		{"dup scenario", func(p *Project) { p.Scenarios = append(p.Scenarios, &Scenario{ID: "market", Segment: "seg-market"}) }, "duplicate scenario"},
		{"missing segment", func(p *Project) { p.Scenarios[0].Segment = "" }, "no video segment"},
		{"unknown segment", func(p *Project) { p.Scenarios[0].Segment = "seg-void" }, "not present in the video container"},
		{"dup object", func(p *Project) {
			p.Scenarios[1].Objects = append(p.Scenarios[1].Objects, &Object{ID: "computer", Kind: Hotspot, Region: raster.Rect{W: 1, H: 1}})
		}, "duplicate object"},
		{"bad kind", func(p *Project) { p.Scenarios[0].Objects[0].Kind = "wizard" }, "unknown object kind"},
		{"empty region", func(p *Project) { p.Scenarios[0].Objects[0].Region = raster.Rect{} }, "region is empty"},
		{"bad goto", func(p *Project) {
			p.Scenarios[0].Objects[1].Events[2].Script = `goto "atlantis";`
		}, "not a scenario"},
		{"bad learn", func(p *Project) {
			p.Scenarios[0].Objects[1].Events[0].Script = `learn "alchemy";`
		}, "unknown knowledge unit"},
		{"bad reward", func(p *Project) {
			p.Scenarios[0].Objects[1].Events[0].Script = `reward "coin";`
		}, "not marked as a reward"},
		{"script error", func(p *Project) {
			p.Scenarios[0].Objects[1].Events[0].Script = `say ;`
		}, "script error"},
		{"use without item", func(p *Project) {
			p.Scenarios[0].Objects[1].Events[1].UseItem = ""
		}, "use trigger without use_item"},
		{"bad condition", func(p *Project) {
			p.Scenarios[0].Objects[1].Events[0].Condition = `1 +`
		}, "condition error"},
		{"enter on object", func(p *Project) {
			p.Scenarios[0].Objects[1].Events = append(p.Scenarios[0].Objects[1].Events, Event{Trigger: OnEnter, Script: `say "x";`})
		}, "belong to scenarios"},
		{"mission flag", func(p *Project) { p.Missions[0].DoneFlag = "" }, "no done_flag"},
		{"mission reward", func(p *Project) { p.Missions[0].Reward = "gold" }, "unknown"},
		{"bad enable", func(p *Project) {
			p.Scenarios[0].OnEnter = `enable "ghost";`
		}, "unknown object"},
	}
	for _, c := range cases {
		p := tinyProject()
		c.mutate(p)
		probs := p.Validate([]string{"seg-classroom", "seg-market"})
		found := false
		for _, pr := range probs {
			if pr.Severity == Error && strings.Contains(pr.Msg, c.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no error containing %q in %v", c.name, c.want, probs)
		}
	}
}

func TestValidateWarnings(t *testing.T) {
	p := tinyProject()
	// Unreachable scenario.
	p.Scenarios = append(p.Scenarios, &Scenario{ID: "island", Name: "Island", Segment: "seg-classroom"})
	// NPC without dialogue.
	p.Scenarios[0].Objects[0].Dialogue = nil
	probs := p.Validate(nil) // nil segments: skip segment checks
	var warnTexts []string
	for _, pr := range probs {
		if pr.Severity == Warning {
			warnTexts = append(warnTexts, pr.String())
		}
	}
	joined := strings.Join(warnTexts, "\n")
	if !strings.Contains(joined, "unreachable") {
		t.Errorf("missing unreachable warning in:\n%s", joined)
	}
	if !strings.Contains(joined, "no dialogue") {
		t.Errorf("missing NPC dialogue warning in:\n%s", joined)
	}
	if HasErrors(probs) {
		t.Error("warnings flagged as errors")
	}
}

func TestMissionCompletion(t *testing.T) {
	p := tinyProject()
	s := NewState(p)
	m := p.Missions[0]
	if s.MissionComplete(m) {
		t.Fatal("mission complete at start")
	}
	s.Flags["fixed"] = true
	if !s.MissionComplete(m) {
		t.Fatal("mission not complete after flag")
	}
}

func TestLearnedUnitsSorted(t *testing.T) {
	s := NewState(tinyProject())
	s.Learned["z-unit"] = true
	s.Learned["a-unit"] = true
	got := s.LearnedUnits()
	if len(got) != 2 || got[0] != "a-unit" || got[1] != "z-unit" {
		t.Fatalf("LearnedUnits = %v", got)
	}
}
