// Package netstream delivers game packages over HTTP — the paper's
// web-based deployment ("students can easily access these resources via
// network", §2) and the substitution for its "web page" resources.
//
// The Server publishes .tkg packages with HTTP range support. The Client
// offers two strategies, compared by experiment E8:
//
//   - Download: fetch the whole package, then play (the 2007 default).
//   - ProgressiveOpen: ranged fetches of the section table, the project
//     document, the video index, and only the packets of the start
//     segment — play begins after a small, size-independent prefix.
package netstream

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/gamepack"
	"repro/internal/media/container"
	"repro/internal/media/raster"
	"repro/internal/media/vcodec"
)

// pkgEntry is one published package with its precomputed validator.
type pkgEntry struct {
	blob []byte
	etag string
}

// Server publishes game packages under /pkg/<name> with range support, a
// package listing under /list, and popup web resources under /res/<name>.
// Additional subsystems (the telemetry service, health checks) mount their
// handlers with Mount. All methods are safe for concurrent use; a classroom
// fleet hammers one Server from hundreds of goroutines.
type Server struct {
	mu        sync.RWMutex
	packages  map[string]pkgEntry
	resources map[string]string
	mounts    map[string]http.Handler // path (or prefix ending in "/") → handler
	started   time.Time
}

// NewServer creates an empty server.
func NewServer() *Server {
	return &Server{
		packages:  map[string]pkgEntry{},
		resources: map[string]string{},
		mounts:    map[string]http.Handler{},
		started:   time.Now(),
	}
}

// AddPackage publishes a package blob under a name.
func (s *Server) AddPackage(name string, blob []byte) error {
	if name == "" || strings.ContainsAny(name, "/ ") {
		return fmt.Errorf("netstream: bad package name %q", name)
	}
	if _, err := gamepack.Open(blob); err != nil {
		return fmt.Errorf("netstream: refusing to serve invalid package: %w", err)
	}
	sum := sha256.Sum256(blob)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.packages[name] = pkgEntry{blob: blob, etag: fmt.Sprintf(`"%x"`, sum[:16])}
	return nil
}

// Mount attaches a handler at a path. A pattern ending in "/" matches the
// whole subtree ("/telemetry/" serves /telemetry/ingest and
// /telemetry/stats); otherwise the match is exact ("/healthz"). Mounts take
// precedence over the built-in routes, so a pattern that would capture any
// /pkg/, /res/ or /list request is rejected.
func (s *Server) Mount(pattern string, h http.Handler) error {
	if pattern == "" || pattern[0] != '/' {
		return fmt.Errorf("netstream: mount pattern %q must start with /", pattern)
	}
	subtree := strings.HasSuffix(pattern, "/")
	for _, reserved := range []string{"/pkg/", "/res/", "/list"} {
		shadows := pattern == reserved ||
			// A mount inside a reserved subtree captures those requests
			// ("/pkg/x" or "/pkg/x/" shadow package fetches)...
			(strings.HasSuffix(reserved, "/") && strings.HasPrefix(pattern, reserved)) ||
			// ...and a subtree mount above a reserved route captures it
			// ("/" shadows everything). "/listing" shadows nothing.
			(subtree && strings.HasPrefix(reserved, pattern))
		if shadows {
			return fmt.Errorf("netstream: pattern %q shadows built-in route %q", pattern, reserved)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mounts[pattern] = h
	return nil
}

// mountFor resolves a mounted handler for a request path, preferring the
// longest pattern.
func (s *Server) mountFor(path string) http.Handler {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var best string
	var h http.Handler
	for pat, handler := range s.mounts {
		ok := pat == path || (strings.HasSuffix(pat, "/") && strings.HasPrefix(path, pat))
		if ok && len(pat) > len(best) {
			best, h = pat, handler
		}
	}
	return h
}

// AddResource publishes a text resource (the target of scripts' `open`).
func (s *Server) AddResource(name, content string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.resources[name] = content
}

// Names lists published packages, sorted.
func (s *Server) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.packages))
	for n := range s.packages {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := s.mountFor(r.URL.Path); h != nil {
		h.ServeHTTP(w, r)
		return
	}
	switch {
	case r.URL.Path == "/list":
		for _, n := range s.Names() {
			fmt.Fprintln(w, n)
		}
	case strings.HasPrefix(r.URL.Path, "/pkg/"):
		name := strings.TrimPrefix(r.URL.Path, "/pkg/")
		s.mu.RLock()
		ent, ok := s.packages[name]
		s.mu.RUnlock()
		if !ok {
			http.NotFound(w, r)
			return
		}
		// With the ETag header set, ServeContent answers If-None-Match with
		// 304 (and still implements Range/If-Modified-Since for us) — repeat
		// fleet fetches of an unchanged package cost a handshake, not
		// megabytes.
		w.Header().Set("ETag", ent.etag)
		http.ServeContent(w, r, name+".tkg", s.started, newByteReader(ent.blob))
	case strings.HasPrefix(r.URL.Path, "/res/"):
		name := strings.TrimPrefix(r.URL.Path, "/res/")
		s.mu.RLock()
		content, ok := s.resources[name]
		s.mu.RUnlock()
		if !ok {
			http.NotFound(w, r)
			return
		}
		io.WriteString(w, content)
	default:
		http.NotFound(w, r)
	}
}

// byteReader adapts a []byte to io.ReadSeeker for http.ServeContent.
type byteReader struct {
	data []byte
	pos  int64
}

func newByteReader(b []byte) *byteReader { return &byteReader{data: b} }

func (r *byteReader) Read(p []byte) (int, error) {
	if r.pos >= int64(len(r.data)) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.pos:])
	r.pos += int64(n)
	return n, nil
}

func (r *byteReader) Seek(offset int64, whence int) (int64, error) {
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = r.pos
	case io.SeekEnd:
		base = int64(len(r.data))
	default:
		return 0, errors.New("netstream: bad whence")
	}
	if base+offset < 0 {
		return 0, errors.New("netstream: negative seek")
	}
	r.pos = base + offset
	return r.pos, nil
}

// Stats counts what a client transfer cost.
type Stats struct {
	Requests     int
	BytesFetched int
	NotModified  int // conditional GETs answered 304
	Elapsed      time.Duration
}

// Add accumulates another transfer's stats (fleet-level totals).
func (st *Stats) Add(o Stats) {
	st.Requests += o.Requests
	st.BytesFetched += o.BytesFetched
	st.NotModified += o.NotModified
	st.Elapsed += o.Elapsed
}

// Client fetches packages from a Server (or anything speaking HTTP ranges).
type Client struct {
	HTTP *http.Client // defaults to http.DefaultClient
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Download fetches a whole package.
func (c *Client) Download(url string) ([]byte, Stats, error) {
	var st Stats
	began := time.Now()
	resp, err := c.httpClient().Get(url)
	if err != nil {
		return nil, st, err
	}
	defer resp.Body.Close()
	st.Requests++
	if resp.StatusCode != http.StatusOK {
		return nil, st, fmt.Errorf("netstream: GET %s: %s", url, resp.Status)
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, st, err
	}
	st.BytesFetched = len(blob)
	st.Elapsed = time.Since(began)
	return blob, st, nil
}

// PackageCache remembers downloaded packages by URL together with the
// validator the server sent, so repeat fetches can be conditional. It is
// safe for concurrent use by a whole learner fleet.
type PackageCache struct {
	mu      sync.Mutex
	entries map[string]cachedPackage
}

type cachedPackage struct {
	etag string
	blob []byte
}

// NewPackageCache creates an empty cache.
func NewPackageCache() *PackageCache {
	return &PackageCache{entries: map[string]cachedPackage{}}
}

func (pc *PackageCache) get(url string) (cachedPackage, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	e, ok := pc.entries[url]
	return e, ok
}

func (pc *PackageCache) put(url, etag string, blob []byte) {
	if etag == "" {
		return // nothing to validate against later
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.entries[url] = cachedPackage{etag: etag, blob: blob}
}

// DownloadCached fetches a package through a shared cache. When the cache
// holds a copy, the request carries If-None-Match and a 304 answer reuses
// the cached bytes — the Stats then count one request, zero bytes fetched
// and one NotModified. The returned blob must be treated as read-only (it
// is shared across callers).
func (c *Client) DownloadCached(url string, cache *PackageCache) ([]byte, Stats, error) {
	var st Stats
	began := time.Now()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, st, err
	}
	cached, have := cache.get(url)
	if have {
		req.Header.Set("If-None-Match", cached.etag)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, st, err
	}
	defer resp.Body.Close()
	st.Requests++
	switch {
	case have && resp.StatusCode == http.StatusNotModified:
		st.NotModified++
		st.Elapsed = time.Since(began)
		return cached.blob, st, nil
	case resp.StatusCode == http.StatusOK:
		blob, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, st, err
		}
		st.BytesFetched = len(blob)
		st.Elapsed = time.Since(began)
		cache.put(url, resp.Header.Get("ETag"), blob)
		return blob, st, nil
	default:
		return nil, st, fmt.Errorf("netstream: GET %s: %s", url, resp.Status)
	}
}

// fetchRange GETs bytes [from, to) of url.
func (c *Client) fetchRange(url string, from, to int, st *Stats) ([]byte, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", from, to-1))
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	st.Requests++
	if resp.StatusCode != http.StatusPartialContent && resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("netstream: range GET %s: %s", url, resp.Status)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusOK && len(data) > to-from {
		// Server ignored the range; slice what we asked for.
		data = data[from:to]
	}
	st.BytesFetched += len(data)
	return data, nil
}

// contentLength HEADs the url.
func (c *Client) contentLength(url string, st *Stats) (int, error) {
	resp, err := c.httpClient().Head(url)
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	st.Requests++
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("netstream: HEAD %s: %s", url, resp.Status)
	}
	if resp.ContentLength < 0 {
		return 0, errors.New("netstream: server did not report a length")
	}
	return int(resp.ContentLength), nil
}

// RemoteGame is a progressively loaded game: full project document, video
// head, and packet data for the segments fetched so far.
type RemoteGame struct {
	Project *core.Project
	head    *container.Head

	client   *Client
	url      string
	videoOff int // absolute offset of the video section within the package

	mu     sync.Mutex
	chunks map[int][]byte // first-packet index → raw packet bytes
	starts []int          // sorted chunk keys
	ends   map[int]int    // chunk start → one-past-last packet index
}

// ProgressiveOpen fetches just enough of the package to start playing its
// start scenario: section table → project → video head → start-segment
// packets. The returned Stats are the startup cost E8 reports.
func (c *Client) ProgressiveOpen(url string) (*RemoteGame, Stats, error) {
	var st Stats
	began := time.Now()
	total, err := c.contentLength(url, &st)
	if err != nil {
		return nil, st, err
	}
	// 1. Section table (grow the prefix until it parses).
	prefixLen := 4096
	var secs map[string][2]int
	for {
		if prefixLen > total {
			prefixLen = total
		}
		prefix, err := c.fetchRange(url, 0, prefixLen, &st)
		if err != nil {
			return nil, st, err
		}
		secs, err = gamepack.SectionsWithin(prefix, total)
		if err == nil {
			break
		}
		if !errors.Is(err, gamepack.ErrShortPrefix) || prefixLen == total {
			return nil, st, err
		}
		prefixLen *= 4
	}
	projLoc, ok := secs[gamepack.SectionProject]
	if !ok {
		return nil, st, errors.New("netstream: package has no project section")
	}
	videoLoc, ok := secs[gamepack.SectionVideo]
	if !ok {
		return nil, st, errors.New("netstream: package has no video section")
	}
	// 2. Project document.
	projJSON, err := c.fetchRange(url, projLoc[0], projLoc[0]+projLoc[1], &st)
	if err != nil {
		return nil, st, err
	}
	proj, err := core.UnmarshalProject(projJSON)
	if err != nil {
		return nil, st, err
	}
	// 3. Video head (grow until the index parses).
	headLen := 16384
	var head *container.Head
	for {
		if headLen > videoLoc[1] {
			headLen = videoLoc[1]
		}
		hb, err := c.fetchRange(url, videoLoc[0], videoLoc[0]+headLen, &st)
		if err != nil {
			return nil, st, err
		}
		head, err = container.ParseHead(hb)
		if err == nil {
			break
		}
		if !errors.Is(err, container.ErrTruncated) || headLen == videoLoc[1] {
			return nil, st, err
		}
		headLen *= 4
	}
	g := &RemoteGame{
		Project:  proj,
		head:     head,
		client:   c,
		url:      url,
		videoOff: videoLoc[0],
		chunks:   map[int][]byte{},
		ends:     map[int]int{},
	}
	// 4. The start scenario's segment packets.
	start := proj.ScenarioByID(proj.StartScenario)
	if start == nil {
		return nil, st, fmt.Errorf("netstream: start scenario %q missing", proj.StartScenario)
	}
	if err := g.ensureSegment(start.Segment, &st); err != nil {
		return nil, st, err
	}
	st.Elapsed = time.Since(began)
	return g, st, nil
}

// ensureSegment fetches the byte range covering a segment (from its
// preceding keyframe) if not already present.
func (g *RemoteGame) ensureSegment(name string, st *Stats) error {
	ch, ok := g.head.ChapterByName(name)
	if !ok {
		return fmt.Errorf("netstream: no segment %q", name)
	}
	k, err := g.head.KeyframeAtOrBefore(ch.Start)
	if err != nil {
		return err
	}
	g.mu.Lock()
	_, have := g.chunks[k]
	if have && g.ends[k] >= ch.End {
		g.mu.Unlock()
		return nil
	}
	g.mu.Unlock()
	lo, hi, err := g.head.ByteRange(k, ch.End)
	if err != nil {
		return err
	}
	chunk, err := g.client.fetchRange(g.url, g.videoOff+lo, g.videoOff+hi, st)
	if err != nil {
		return err
	}
	g.mu.Lock()
	g.chunks[k] = chunk
	g.ends[k] = ch.End
	g.starts = append(g.starts, k)
	sort.Ints(g.starts)
	g.mu.Unlock()
	return nil
}

// FetchSegment pulls an additional segment (e.g. ahead of a goto) and
// reports its transfer cost.
func (g *RemoteGame) FetchSegment(name string) (Stats, error) {
	var st Stats
	began := time.Now()
	err := g.ensureSegment(name, &st)
	st.Elapsed = time.Since(began)
	return st, err
}

// HasSegment reports whether a segment's packets are locally available.
func (g *RemoteGame) HasSegment(name string) bool {
	ch, ok := g.head.ChapterByName(name)
	if !ok {
		return false
	}
	k, err := g.head.KeyframeAtOrBefore(ch.Start)
	if err != nil {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	_, have := g.chunks[k]
	return have && g.ends[k] >= ch.End
}

// Chapters exposes the video's segment table.
func (g *RemoteGame) Chapters() []container.Chapter { return g.head.Chapters() }

// Meta exposes the video metadata.
func (g *RemoteGame) Meta() container.Meta { return g.head.Meta() }

// FrameAt decodes frame i, which must lie inside a fetched segment. Each
// call decodes from the chunk's keyframe — callers wanting sequential decode
// should use a SegmentCursor.
func (g *RemoteGame) FrameAt(i int) (*raster.Frame, error) {
	k, chunk, err := g.chunkFor(i)
	if err != nil {
		return nil, err
	}
	dec := vcodec.NewDecoder(1)
	var out *raster.Frame
	for j := k; j <= i; j++ {
		pkt, err := g.head.PacketFromChunk(chunk, k, j)
		if err != nil {
			return nil, err
		}
		if j < i {
			// Roll-forward frames are never presented; skip their RGB
			// conversion.
			err = dec.Advance(pkt)
		} else {
			out, err = dec.Decode(pkt)
		}
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// chunkFor locates the fetched chunk containing frame i.
func (g *RemoteGame) chunkFor(i int) (int, []byte, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	idx := sort.SearchInts(g.starts, i+1) - 1
	if idx < 0 {
		return 0, nil, fmt.Errorf("netstream: frame %d not fetched", i)
	}
	k := g.starts[idx]
	if i >= g.ends[k] {
		return 0, nil, fmt.Errorf("netstream: frame %d not fetched", i)
	}
	return k, g.chunks[k], nil
}

// FetchResource GETs a popup web resource (scripts' `open` verb).
func (c *Client) FetchResource(url string) (string, Stats, error) {
	var st Stats
	began := time.Now()
	resp, err := c.httpClient().Get(url)
	if err != nil {
		return "", st, err
	}
	defer resp.Body.Close()
	st.Requests++
	if resp.StatusCode != http.StatusOK {
		return "", st, fmt.Errorf("netstream: GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", st, err
	}
	st.BytesFetched = len(body)
	st.Elapsed = time.Since(began)
	return string(body), st, nil
}
