package sim

import "fmt"

// TraceStep is one recorded simulator step: the chosen action, the quiz
// answers given right after it, and the playback ticks watched before the
// next action. A trace plus the package it was recorded against fully
// determines a session.
type TraceStep struct {
	Action  Action       `json:"action"`
	Answers []QuizAnswer `json:"answers,omitempty"`
	Ticks   int          `json:"ticks"`
}

// QuizAnswer is one answered quiz within a trace step.
type QuizAnswer struct {
	Quiz   string `json:"quiz"`
	Choice int    `json:"choice"`
}

// Replay re-applies a recorded trace to a fresh game. Run against the same
// package, a replay reproduces the original run's event log, transcript
// and final state exactly — whether the game is a local session or a
// play-service client. The golden-replay tests pin that equivalence.
func Replay(g Game, trace []TraceStep) error {
	for i, step := range trace {
		Apply(g, step.Action)
		for _, ans := range step.Answers {
			if _, err := g.AnswerQuiz(ans.Quiz, ans.Choice); err != nil {
				return fmt.Errorf("sim: replay step %d: quiz %s: %w", i, ans.Quiz, err)
			}
		}
		if err := g.Advance(step.Ticks); err != nil {
			return fmt.Errorf("sim: replay step %d: %w", i, err)
		}
	}
	return nil
}
