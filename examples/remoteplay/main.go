// Remoteplay: the thin-client deployment. A server publishes the classroom
// course with the play service mounted; the learner's machine holds only
// the course document — the game session itself (state, scripts, video
// decoding) lives on the server. A guided learner plays the whole mission
// over HTTP, act by act, fetching rendered frames like a dumb terminal,
// and the same sim policy that drives local sessions drives this one
// unchanged.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/analytics"
	"repro/internal/content"
	"repro/internal/media/studio"
	"repro/internal/netstream"
	"repro/internal/obs"
	"repro/internal/playsvc"
	"repro/internal/sim"
)

func main() {
	// 1. Server side: publish the course and mount the play service.
	course := content.Classroom()
	blob, err := course.BuildPackage(studio.Options{QStep: 10})
	if err != nil {
		log.Fatal(err)
	}
	srv := netstream.NewServer()
	if err := srv.AddPackage("classroom", blob); err != nil {
		log.Fatal(err)
	}
	play := playsvc.NewManager(playsvc.Options{Shards: 4})
	defer play.Close()
	if err := play.AddCourse("classroom", blob); err != nil {
		log.Fatal(err)
	}
	if err := srv.Mount("/play/", play.Handler()); err != nil {
		log.Fatal(err)
	}
	// The operator surface: every subsystem registers its metric families
	// and the scrape endpoint serves them all.
	reg := obs.NewRegistry("vgbl")
	srv.Register(reg)
	play.Register(reg)
	if err := srv.Mount("/metrics", reg.Handler()); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv)
	url := "http://" + ln.Addr().String()
	fmt.Printf("== play service at %s%s\n", url, playsvc.CreatePath)

	// 2. Client side: dial a hosted session and let the guided policy play
	// it over the wire. Every server-emitted event lands in the collector.
	col := &analytics.Collector{}
	client, err := playsvc.Dial(playsvc.ClientOptions{
		BaseURL:  url,
		Course:   "classroom",
		Project:  course.Project,
		Observer: col,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== hosted session %s\n\n", client.SessionID())

	res, err := sim.RunGame(client, sim.GuidedFactory,
		sim.Config{MaxSteps: 40, Patience: 15, Seed: 1, WatchEvery: 2}, col)
	if err != nil {
		log.Fatal(err)
	}

	// 3. What the learner saw: the final composited frame, fetched as raw
	// RGB from /play/frame and rendered as ASCII.
	frame, err := client.Frame()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== final frame (server-rendered, fetched over the wire)")
	fmt.Println(frame.ASCII(64, 20))

	fmt.Println("== transcript tail")
	msgs := client.Messages()
	for i := max(0, len(msgs)-6); i < len(msgs); i++ {
		fmt.Println("  " + msgs[i])
	}

	fmt.Printf("\n== result: %d steps, completed=%v (%s)\n", res.Steps, res.Completed, res.QuitReason)
	fmt.Printf("   report: %d events, knowledge %v, rewards %v\n",
		res.Report.TotalEvents, res.Report.Knowledge, res.Report.Rewards)

	if err := client.Close(); err != nil {
		log.Fatal(err)
	}

	// 4. The operator's view: scrape the same /metrics endpoint a
	// Prometheus deployment would (here in its JSON form) and read the act
	// latency distribution out of the play-service family.
	snap := scrapeMetrics(url)
	fmt.Println("\n== /metrics?format=json (play-service family)")
	fmt.Printf("   sessions: %d created, %d live after leave\n",
		counter(snap, "vgbl_playsvc_sessions_created_total"), counter(snap, "vgbl_playsvc_sessions_live"))
	fmt.Printf("   served:   %d acts, %d frames\n",
		counter(snap, "vgbl_playsvc_acts_total"), counter(snap, "vgbl_playsvc_frames_total"))
	if m := snap.Metric("vgbl_playsvc_act_seconds"); m != nil && len(m.Series) > 0 && m.Series[0].Histogram != nil {
		h := *m.Series[0].Histogram
		fmt.Printf("   act latency: p50 %v  p95 %v  p99 %v over %d acts\n",
			time.Duration(h.Quantile(0.50)).Round(time.Microsecond),
			time.Duration(h.Quantile(0.95)).Round(time.Microsecond),
			time.Duration(h.Quantile(0.99)).Round(time.Microsecond), h.Count)
	}
}

// scrapeMetrics fetches the registry snapshot the metrics endpoint serves
// with ?format=json.
func scrapeMetrics(base string) *obs.RegistrySnapshot {
	resp, err := http.Get(base + "/metrics?format=json")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.RegistrySnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		log.Fatal(err)
	}
	return &snap
}

// counter reads a single-series counter or gauge value from the snapshot.
func counter(snap *obs.RegistrySnapshot, name string) int64 {
	if m := snap.Metric(name); m != nil && len(m.Series) > 0 && m.Series[0].Value != nil {
		return *m.Series[0].Value
	}
	return 0
}
