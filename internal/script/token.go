// Package script implements the IVGBL event language: the small
// event-condition-action scripts that course designers attach to
// interactive objects in the object editor (paper §4.2, "set the properties
// and events of objects in video and produce adequate feedback").
//
// A script is a statement list run when an object's trigger fires:
//
//	if has("coin") && !flag("fixed") {
//	    take "coin";
//	    give "ram module";
//	    say "You bought the part.";
//	    learn "hardware-shopping";
//	    set score = score + 10;
//	    goto "classroom";
//	} else {
//	    say "You cannot afford it.";
//	}
//
// The language is deliberately tiny — integers, booleans, strings, the
// game-state predicates has/flag and integer variables — because its users
// are the paper's non-programmer content providers.
package script

import (
	"fmt"
	"unicode"
)

// tokenKind enumerates lexical token types.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokString
	tokLBrace  // {
	tokRBrace  // }
	tokLParen  // (
	tokRParen  // )
	tokSemi    // ;
	tokAssign  // =
	tokEq      // ==
	tokNeq     // !=
	tokLt      // <
	tokLe      // <=
	tokGt      // >
	tokGe      // >=
	tokPlus    // +
	tokMinus   // -
	tokStar    // *
	tokSlash   // /
	tokPercent // %
	tokAnd     // &&
	tokOr      // ||
	tokNot     // !
	tokComma   // ,
)

func (k tokenKind) String() string {
	names := map[tokenKind]string{
		tokEOF: "end of script", tokIdent: "identifier", tokInt: "integer",
		tokString: "string", tokLBrace: "'{'", tokRBrace: "'}'",
		tokLParen: "'('", tokRParen: "')'", tokSemi: "';'", tokAssign: "'='",
		tokEq: "'=='", tokNeq: "'!='", tokLt: "'<'", tokLe: "'<='",
		tokGt: "'>'", tokGe: "'>='", tokPlus: "'+'", tokMinus: "'-'",
		tokStar: "'*'", tokSlash: "'/'", tokPercent: "'%'", tokAnd: "'&&'",
		tokOr: "'||'", tokNot: "'!'", tokComma: "','",
	}
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// token is one lexical unit with its source position.
type token struct {
	kind tokenKind
	text string // identifier name, string contents, or integer literal text
	num  int    // value for tokInt
	line int
	col  int
}

// Error is a compile- or runtime-time script error with position info.
type Error struct {
	Line, Col int
	Msg       string
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("script:%d:%d: %s", e.Line, e.Col, e.Msg)
	}
	return "script: " + e.Msg
}

func errAt(line, col int, format string, args ...any) *Error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// lex tokenizes src. Comments run from '#' to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	rs := []rune(src)
	i := 0
	advance := func() rune {
		r := rs[i]
		i++
		if r == '\n' {
			line++
			col = 1
		} else {
			col++
		}
		return r
	}
	peek := func() rune {
		if i >= len(rs) {
			return 0
		}
		return rs[i]
	}
	for i < len(rs) {
		startLine, startCol := line, col
		r := advance()
		switch {
		case r == ' ' || r == '\t' || r == '\n' || r == '\r':
			continue
		case r == '#':
			for i < len(rs) && peek() != '\n' {
				advance()
			}
		case unicode.IsLetter(r) || r == '_':
			text := string(r)
			for i < len(rs) && (unicode.IsLetter(peek()) || unicode.IsDigit(peek()) || peek() == '_' || peek() == '-') {
				text += string(advance())
			}
			toks = append(toks, token{kind: tokIdent, text: text, line: startLine, col: startCol})
		case unicode.IsDigit(r):
			n := int(r - '0')
			for i < len(rs) && unicode.IsDigit(peek()) {
				n = n*10 + int(advance()-'0')
				if n > 1<<30 {
					return nil, errAt(startLine, startCol, "integer literal too large")
				}
			}
			toks = append(toks, token{kind: tokInt, num: n, line: startLine, col: startCol})
		case r == '"':
			var text []rune
			closed := false
			for i < len(rs) {
				c := advance()
				if c == '"' {
					closed = true
					break
				}
				if c == '\\' && i < len(rs) {
					e := advance()
					switch e {
					case 'n':
						text = append(text, '\n')
					case 't':
						text = append(text, '\t')
					case '"', '\\':
						text = append(text, e)
					default:
						return nil, errAt(line, col, "unknown escape \\%c", e)
					}
					continue
				}
				if c == '\n' {
					return nil, errAt(startLine, startCol, "unterminated string")
				}
				text = append(text, c)
			}
			if !closed {
				return nil, errAt(startLine, startCol, "unterminated string")
			}
			toks = append(toks, token{kind: tokString, text: string(text), line: startLine, col: startCol})
		default:
			two := func(next rune, k2 tokenKind, k1 tokenKind) {
				if peek() == next {
					advance()
					toks = append(toks, token{kind: k2, line: startLine, col: startCol})
				} else if k1 == tokEOF {
					// marker for "must be two-char"
				} else {
					toks = append(toks, token{kind: k1, line: startLine, col: startCol})
				}
			}
			switch r {
			case '{':
				toks = append(toks, token{kind: tokLBrace, line: startLine, col: startCol})
			case '}':
				toks = append(toks, token{kind: tokRBrace, line: startLine, col: startCol})
			case '(':
				toks = append(toks, token{kind: tokLParen, line: startLine, col: startCol})
			case ')':
				toks = append(toks, token{kind: tokRParen, line: startLine, col: startCol})
			case ';':
				toks = append(toks, token{kind: tokSemi, line: startLine, col: startCol})
			case ',':
				toks = append(toks, token{kind: tokComma, line: startLine, col: startCol})
			case '+':
				toks = append(toks, token{kind: tokPlus, line: startLine, col: startCol})
			case '-':
				toks = append(toks, token{kind: tokMinus, line: startLine, col: startCol})
			case '*':
				toks = append(toks, token{kind: tokStar, line: startLine, col: startCol})
			case '/':
				toks = append(toks, token{kind: tokSlash, line: startLine, col: startCol})
			case '%':
				toks = append(toks, token{kind: tokPercent, line: startLine, col: startCol})
			case '=':
				two('=', tokEq, tokAssign)
			case '!':
				two('=', tokNeq, tokNot)
			case '<':
				two('=', tokLe, tokLt)
			case '>':
				two('=', tokGe, tokGt)
			case '&':
				if peek() != '&' {
					return nil, errAt(startLine, startCol, "single '&' (use '&&')")
				}
				advance()
				toks = append(toks, token{kind: tokAnd, line: startLine, col: startCol})
			case '|':
				if peek() != '|' {
					return nil, errAt(startLine, startCol, "single '|' (use '||')")
				}
				advance()
				toks = append(toks, token{kind: tokOr, line: startLine, col: startCol})
			default:
				return nil, errAt(startLine, startCol, "unexpected character %q", r)
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line, col: col})
	return toks, nil
}
