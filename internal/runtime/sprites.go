package runtime

import (
	"repro/internal/core"
	"repro/internal/media/raster"
)

// spriteKey is the transparency key for object sprites. The paper's
// Figure 2 shows "an image object with white background ... mounted on the
// video frame"; we reproduce exactly that: sprites are drawn on white and
// blitted with white keyed out.
var spriteKey = raster.White

// renderSprite draws an object's sprite into a fresh frame of the object's
// region size, on the white key background.
func renderSprite(o *core.Object) *raster.Frame {
	w, h := o.Region.W, o.Region.H
	if w < 3 {
		w = 3
	}
	if h < 3 {
		h = 3
	}
	f := raster.New(w, h)
	f.Fill(spriteKey)
	c := o.Sprite.Color
	if c == (raster.RGB{}) {
		c = raster.Magenta
	}
	switch o.Sprite.Shape {
	case "disc", "coin":
		r := min(w, h)/2 - 1
		f.FillCircle(w/2, h/2, r, c)
		if o.Sprite.Shape == "coin" {
			f.DrawCircle(w/2, h/2, r-1, c.Scale(0.6))
		}
	case "umbrella":
		// Canopy: filled half-disc made of horizontal strips.
		r := w/2 - 1
		cy := h / 3
		for dy := 0; dy <= r; dy++ {
			half := int(float64(r) * (1 - float64(dy)/float64(r+1)))
			f.HLine(w/2-half, w/2+half, cy-dy/2, c)
		}
		// Pole and handle.
		f.VLine(w/2, cy, h-2, raster.DarkGry)
		f.HLine(w/2, w/2+2, h-2, raster.DarkGry)
	case "chip":
		// Memory module: board with pins.
		f.FillRect(raster.Rect{X: 1, Y: h / 4, W: w - 2, H: h / 2}, c)
		for x := 2; x < w-2; x += 2 {
			f.VLine(x, h*3/4, h-2, raster.DarkGry)
		}
	case "badge":
		r := min(w, h)/2 - 1
		f.FillCircle(w/2, h/2, r, c)
		f.FillCircle(w/2, h/2, r/2, raster.Yellow)
	case "box", "":
		f.FillRect(raster.Rect{X: 1, Y: 1, W: w - 2, H: h - 2}, c)
		f.DrawRect(raster.Rect{X: 0, Y: 0, W: w, H: h}, c.Scale(0.5))
	default:
		f.FillRect(raster.Rect{X: 1, Y: 1, W: w - 2, H: h - 2}, c)
	}
	if o.Sprite.Label != "" {
		lbl := raster.FitText(o.Sprite.Label, w-2)
		tx := (w - raster.TextWidth(lbl)) / 2
		f.DrawText(tx, (h-raster.GlyphH)/2, lbl, raster.Black)
	}
	return f
}

// compositeObjects mounts every visible object sprite onto the video frame.
// Hotspots and NPCs have no sprite — they are part of the filmed scene —
// but Items and NavButtons are image objects layered on top (paper §4.2).
// Sprites depend only on the object definition, so each is rendered once
// and cached on the session; steady-state composition allocates nothing.
func (s *Session) compositeObjects(frame *raster.Frame, scenario *core.Scenario) {
	for _, o := range scenario.Objects {
		if !s.state.ObjectVisible(o) {
			continue
		}
		if o.Kind != core.Item && o.Kind != core.NavButton {
			continue
		}
		spr := s.sprites[o]
		if spr == nil {
			spr = renderSprite(o)
			s.sprites[o] = spr
		}
		frame.BlitKeyed(spr, o.Region.X, o.Region.Y, spriteKey)
	}
}
