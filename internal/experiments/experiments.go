// Package experiments regenerates every figure and derived table of the
// reproduction (see DESIGN.md §4 and EXPERIMENTS.md). Each experiment is a
// function returning the formatted table/figure it produces, so the
// vgbl-experiments binary, the test suite and the docs all share one
// implementation.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/author"
	"repro/internal/baseline"
	"repro/internal/content"
	"repro/internal/media/playback"
	"repro/internal/media/raster"
	"repro/internal/media/shotdetect"
	"repro/internal/media/studio"
	"repro/internal/media/synth"
	"repro/internal/runtime"
)

// F1 reproduces Figure 1: the authoring tool interface with the classroom
// course loaded, rendered headlessly as ASCII.
func F1() (string, error) {
	course := content.Classroom()
	video, err := course.RecordVideo(studio.Options{QStep: 6})
	if err != nil {
		return "", err
	}
	projJSON, err := course.Project.Marshal()
	if err != nil {
		return "", err
	}
	tool, err := author.Load(projJSON, video)
	if err != nil {
		return "", err
	}
	ed := author.NewEditorWindow(tool)
	ed.SelectScenario("classroom")
	ed.SelectObject("computer")
	var b strings.Builder
	b.WriteString("FIGURE 1 — the interface of the interactive VGBL authoring tool\n")
	b.WriteString("(scenario editor: video preview + segment timeline; object editor:\n")
	b.WriteString(" object list + property sheet; classroom course loaded)\n\n")
	b.WriteString(ed.Snapshot(132, 44))
	return b.String(), nil
}

// F2 reproduces Figure 2: the runtime interface — street scene with the
// umbrella image object mounted on the video frame, inventory window and
// buttons.
func F2() (string, error) {
	blob, err := content.StreetDemo().BuildPackage(studio.Options{QStep: 6})
	if err != nil {
		return "", err
	}
	s, err := runtime.NewSession(blob, runtime.Options{})
	if err != nil {
		return "", err
	}
	g := runtime.NewGameWindow(s)
	var b strings.Builder
	b.WriteString("FIGURE 2 — the interface of the interactive VGBL runtime environment\n")
	b.WriteString("(umbrella image object mounted on the video frame; inventory window;\n")
	b.WriteString(" examine/cancel buttons; players may click the umbrella or drag it\n")
	b.WriteString(" to the inventory)\n\n")
	b.WriteString(g.Snapshot(132, 44))
	return b.String(), nil
}

// E1 sweeps the shot detector's threshold over hard-cut and fade corpora,
// with the adaptive local-mean test switched on and off (ablation).
func E1() (string, error) {
	var b strings.Builder
	b.WriteString("E1 — shot segmentation accuracy (scenario editor auto-segmentation)\n")
	b.WriteString("corpus: 5 noisy synthetic films x 8 shots, 96x64@12, sensor noise 8;\n")
	b.WriteString("tolerance 2 frames for hard cuts, 10 for all-fade films\n\n")
	b.WriteString("  detector  | thresh | hard cuts: P / R / F1  | all fades: P / R / F1\n")
	b.WriteString("  ----------+--------+------------------------+----------------------\n")
	for _, adaptive := range []bool{false, true} {
		name := "absolute"
		ratio := 0.0
		if adaptive {
			name = "adaptive"
			ratio = shotdetect.Defaults().AdaptiveRatio
		}
		for _, th := range []float64{0.01, 0.05, 0.20, 0.60, 1.20} {
			hp, hr, hf, err := e1Corpus(th, ratio, 0, 2)
			if err != nil {
				return "", err
			}
			fp, fr, ff, err := e1Corpus(th, ratio, 1.0, 10)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "  %-9s | %6.2f | %4.2f / %4.2f / %4.2f     | %4.2f / %4.2f / %4.2f\n",
				name, th, hp, hr, hf, fp, fr, ff)
		}
	}
	b.WriteString("\nshape check: low absolute thresholds drown in noise/motion false\n")
	b.WriteString("positives, high ones miss cuts; the adaptive test keeps precision\n")
	b.WriteString("near 1.0 across the sweep. Fades rely on the twin-comparison detector.\n")
	return b.String(), nil
}

func e1Corpus(threshold, adaptiveRatio, fadeFraction float64, tol int) (p, r, f1 float64, err error) {
	var tp, fp, fn int
	for seed := int64(1); seed <= 5; seed++ {
		film := synth.Generate(synth.Spec{
			W: 96, H: 64, FPS: 12,
			Shots: 8, MinShotFrames: 16, MaxShotFrames: 28,
			FadeFraction: fadeFraction, FadeFrames: 8,
			NoiseAmp: 8, Seed: seed * 31,
		})
		cfg := shotdetect.Defaults()
		cfg.HardThreshold = threshold
		cfg.AdaptiveRatio = adaptiveRatio
		cfg.Workers = 2
		src := shotdetect.FuncSource{N: film.FrameCount(), F: func(i int) (*raster.Frame, error) {
			return film.Render(i), nil
		}}
		bounds, derr := shotdetect.Detect(src, cfg)
		if derr != nil {
			return 0, 0, 0, derr
		}
		var truth []int
		for _, c := range film.Cuts() {
			truth = append(truth, c.Frame)
		}
		m := shotdetect.Score(bounds, truth, tol)
		tp += m.TP
		fp += m.FP
		fn += m.FN
	}
	if tp+fp > 0 {
		p = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		r = float64(tp) / float64(tp+fn)
	}
	if p+r > 0 {
		f1 = 2 * p * r / (p + r)
	}
	return p, r, f1, nil
}

// E2 measures scenario-switch latency: indexed seek vs the unindexed
// decode-from-zero baseline.
func E2() (string, error) {
	var b strings.Builder
	b.WriteString("E2 — scenario switch latency: container index vs linear scan\n")
	b.WriteString("film 96x64@12, GOP 12; switch target = last frame of the film\n\n")
	b.WriteString("  film length | frames | indexed: decoded    time | linear: decoded    time | speedup\n")
	b.WriteString("  ------------+--------+-------------------------+-------------------------+--------\n")
	for _, seconds := range []int{15, 30, 60, 120} {
		film := synth.Generate(synth.Spec{
			W: 96, H: 64, FPS: 12,
			Shots:         seconds / 5,
			MinShotFrames: 50, MaxShotFrames: 70,
			NoiseAmp: 1, Seed: int64(seconds),
		})
		blob, err := studio.Record(film, studio.Options{QStep: 8, GOP: 12})
		if err != nil {
			return "", err
		}
		target := film.FrameCount() - 1
		// Indexed path.
		v, err := playback.OpenVideo(blob, 1)
		if err != nil {
			return "", err
		}
		t0 := time.Now()
		if _, err := v.FrameAt(target); err != nil {
			return "", err
		}
		indexedTime := time.Since(t0)
		indexedDecoded := target%12 + 1 // from preceding keyframe
		// Linear baseline.
		t0 = time.Now()
		_, linDecoded, err := baseline.UnindexedSeek(blob, target)
		if err != nil {
			return "", err
		}
		linTime := time.Since(t0)
		speedup := float64(linTime) / float64(indexedTime)
		fmt.Fprintf(&b, "  %9ds | %6d | %15d %8s | %14d %9s | %5.1fx\n",
			seconds, film.FrameCount(),
			indexedDecoded, round(indexedTime),
			linDecoded, round(linTime), speedup)
	}
	b.WriteString("\nshape check: indexed decode count is bounded by the GOP (<=12 frames)\n")
	b.WriteString("regardless of film length; linear scan grows with the film, so the\n")
	b.WriteString("speedup widens — interactive jumps need the index.\n")
	return b.String(), nil
}

func round(d time.Duration) string {
	switch {
	case d > time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d > time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dus", d.Microseconds())
	}
}

// E3 sweeps the codec's rate/distortion and parallel encode throughput.
func E3() (string, error) {
	var b strings.Builder
	b.WriteString("E3 — TKV1 codec rate/distortion and encode scaling\n")
	b.WriteString("30 frames of synthetic footage per point, GOP 10, search range 3\n\n")
	b.WriteString("  resolution |  q | kbits/frame |  PSNR dB | enc fps (1w) | enc fps (2w) | enc fps (4w)\n")
	b.WriteString("  -----------+----+-------------+----------+--------------+--------------+-------------\n")
	for _, res := range [][2]int{{160, 120}, {320, 240}} {
		for _, q := range []int{2, 4, 8, 16} {
			row, err := e3Point(res[0], res[1], q)
			if err != nil {
				return "", err
			}
			b.WriteString(row)
		}
	}
	b.WriteString("\nshape check: size falls and PSNR drops as q rises; worker scaling is\n")
	b.WriteString("reported for completeness (this reproduction host may be single-core).\n")
	return b.String(), nil
}

func e3Point(w, h, q int) (string, error) {
	film := synth.Generate(synth.Spec{
		W: w, H: h, FPS: 10,
		Shots: 2, MinShotFrames: 15, MaxShotFrames: 16,
		NoiseAmp: 2, Seed: 77,
	})
	const frames = 30
	// Quality + size with 1 worker.
	var totalBits, measured int
	var psnrSum float64
	fpsFor := func(workers int, collect bool) (float64, error) {
		enc, err := newEncoder(w, h, q, workers)
		if err != nil {
			return 0, err
		}
		dec := newDecoder(workers)
		t0 := time.Now()
		for i := 0; i < frames && i < film.FrameCount(); i++ {
			src := film.Render(i)
			pkt, err := enc.Encode(src)
			if err != nil {
				return 0, err
			}
			if collect {
				totalBits += 8 * len(pkt.Data)
				rec, err := dec.Decode(pkt.Data)
				if err != nil {
					return 0, err
				}
				psnrSum += raster.PSNR(src, rec)
				measured++
			}
		}
		return float64(frames) / time.Since(t0).Seconds(), nil
	}
	fps1, err := fpsFor(1, true)
	if err != nil {
		return "", err
	}
	fps2, err := fpsFor(2, false)
	if err != nil {
		return "", err
	}
	fps4, err := fpsFor(4, false)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("  %4dx%-5d | %2d | %11.1f | %8.1f | %12.1f | %12.1f | %12.1f\n",
		w, h, q, float64(totalBits)/float64(measured)/1000, psnrSum/float64(measured),
		fps1, fps2, fps4), nil
}
