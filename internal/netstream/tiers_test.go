package netstream

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/gamepack"
	"repro/internal/media/container"
	"repro/internal/media/studio"
	"repro/internal/media/synth"
	"repro/internal/obs"
)

// ladderTestServer publishes a 10-segment synth course as a full quality
// ladder on a manifest-backed server with a metrics registry attached.
func ladderTestServer(t *testing.T) (*httptest.Server, *Server, *obs.Registry) {
	t.Helper()
	film := synth.Generate(synth.Spec{
		W: 96, H: 64, FPS: 10,
		Shots: 10, MinShotFrames: 20, MaxShotFrames: 24,
		NoiseAmp: 1, Seed: 12,
	})
	rungs, err := studio.RecordLadder(film, studio.Options{GOP: 10, ShotMarkers: true}, studio.DefaultLadder())
	if err != nil {
		t.Fatal(err)
	}
	videos := make([]gamepack.TierVideo, len(rungs))
	for i, r := range rungs {
		videos[i] = gamepack.TierVideo{Tier: r.Tier, Video: r.Video}
	}
	r, err := container.Open(videos[0].Video)
	if err != nil {
		t.Fatal(err)
	}
	p := core.NewProject("Ladder Course")
	for i, ch := range r.Chapters() {
		id := fmt.Sprintf("s%d", i)
		p.Scenarios = append(p.Scenarios, &core.Scenario{ID: id, Name: ch.Name, Segment: ch.Name})
		if i == 0 {
			p.StartScenario = id
		}
	}
	blob, err := gamepack.BuildLadder(p, videos)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer()
	if err := srv.AddPackage("course", blob); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry("")
	srv.Register(reg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv, reg
}

// serverTierBytes reads the per-tier bytes-served ledger out of a
// registry snapshot, exactly as E19's reconciliation does.
func serverTierBytes(reg *obs.Registry) map[string]int64 {
	out := map[string]int64{}
	snap := reg.Snapshot()
	m := snap.Metric("netstream_tier_bytes_total")
	if m == nil {
		return out
	}
	for _, s := range m.Series {
		if s.Value != nil {
			out[s.Labels["tier"]] = *s.Value
		}
	}
	return out
}

func TestProgressiveOpenABRStartsAtLowestRung(t *testing.T) {
	ts, _, _ := ladderTestServer(t)
	c := &Client{}
	g, st, err := c.ProgressiveOpenABR(ts.URL+"/pkg/course", NewPackageCache(), ABRConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"", "low", "med", "min"}; !reflect.DeepEqual(g.Tiers(), want) {
		t.Fatalf("Tiers = %v, want %v", g.Tiers(), want)
	}
	if g.ABR() == nil {
		t.Fatal("ABR open returned a game without a picker")
	}
	if got := g.ABR().CurrentTier(); got != "min" {
		t.Errorf("picker starts at %q, want the lowest rung", got)
	}
	start := g.Project.ScenarioByID(g.Project.StartScenario)
	tier, ok := g.SegmentTier(start.Segment)
	if !ok || tier != "min" {
		t.Errorf("start segment landed at %q (fetched %v), want the min rung", tier, ok)
	}
	if tb := g.TierBytes(); tb["min"] <= 0 {
		t.Errorf("no wire bytes attributed to the min rung: %v", tb)
	}
	// The whole point of the low start: cheaper than a canonical open.
	cBase := &Client{}
	_, stFull, err := cBase.ProgressiveOpenCached(ts.URL+"/pkg/course", NewPackageCache())
	if err != nil {
		t.Fatal(err)
	}
	if st.BytesFetched >= stFull.BytesFetched {
		t.Errorf("ABR open fetched %d bytes, canonical open %d", st.BytesFetched, stFull.BytesFetched)
	}
}

func TestFetchSegmentTierMixedDecode(t *testing.T) {
	ts, _, _ := ladderTestServer(t)
	c := &Client{}
	g, _, err := c.ProgressiveOpenCached(ts.URL+"/pkg/course", NewPackageCache())
	if err != nil {
		t.Fatal(err)
	}
	chs := g.Chapters()
	if len(chs) < 3 {
		t.Fatalf("course has %d segments, need 3", len(chs))
	}
	// Spread the remaining segments across rungs; the start segment
	// already landed canonical.
	wantTier := map[string]string{chs[0].Name: ""}
	for i, tier := range []string{"min", "low"} {
		ch := chs[i+1]
		if _, err := g.FetchSegmentTier(ch.Name, tier); err != nil {
			t.Fatalf("FetchSegmentTier(%q, %q): %v", ch.Name, tier, err)
		}
		wantTier[ch.Name] = tier
	}
	// A segment keeps the tier it landed at: refetching at another rung
	// is a no-op, not a transfer.
	st, err := g.FetchSegmentTier(chs[1].Name, "")
	if err != nil {
		t.Fatal(err)
	}
	if st.BytesFetched != 0 {
		t.Errorf("refetch of a landed segment transferred %d bytes", st.BytesFetched)
	}
	meta := g.Meta()
	for name, tier := range wantTier {
		got, ok := g.SegmentTier(name)
		if !ok || got != tier {
			t.Errorf("SegmentTier(%q) = %q,%v want %q", name, got, ok, tier)
		}
	}
	// Frames decode across the tier boundary — each landed chunk against
	// the head of the rung that produced it.
	for _, ch := range chs[:3] {
		f, err := g.FrameAt(ch.Start)
		if err != nil {
			t.Fatalf("FrameAt(%d) in %q: %v", ch.Start, ch.Name, err)
		}
		if f.W != meta.Width || f.H != meta.Height {
			t.Errorf("frame %d is %dx%d, want %dx%d", ch.Start, f.W, f.H, meta.Width, meta.Height)
		}
	}
	if _, err := g.FetchSegmentTier(chs[3].Name, "ghost"); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Errorf("unknown tier error = %v", err)
	}
}

// TestTierBytesReconcile plays a ladder end to end and reconciles the
// client's per-tier ledger against the server's /metrics counters to the
// byte — the accounting E19 asserts under fault profiles.
func TestTierBytesReconcile(t *testing.T) {
	ts, _, reg := ladderTestServer(t)
	c := &Client{}
	g, _, err := c.ProgressiveOpenABR(ts.URL+"/pkg/course", NewPackageCache(), ABRConfig{})
	if err != nil {
		t.Fatal(err)
	}
	player := &StreamPlayer{Game: g, DecodeFrames: true}
	rep, err := player.Play()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Segments != len(g.Chapters()) {
		t.Errorf("played %d of %d segments", rep.Segments, len(g.Chapters()))
	}
	if rep.Rebuffers != 0 {
		t.Errorf("%d rebuffers on a loopback link", rep.Rebuffers)
	}
	got := serverTierBytes(reg)
	want := map[string]int64{}
	for tier, n := range g.TierBytes() {
		want[TierLabel(tier)] += n
	}
	for label, n := range want {
		if got[label] != n {
			t.Errorf("tier %q: server served %d bytes, client fetched %d", label, got[label], n)
		}
	}
	for label, n := range got {
		if n != 0 && want[label] == 0 {
			t.Errorf("server served %d bytes on tier %q the client never fetched", n, label)
		}
	}
}

func TestABRFallbacksAndErrors(t *testing.T) {
	ts, srv, _ := ladderTestServer(t)
	c := &Client{}
	if _, _, err := c.ProgressiveOpenABR(ts.URL+"/res/nope", NewPackageCache(), ABRConfig{}); err == nil {
		t.Error("ABR open accepted a non-/pkg/ URL")
	}
	// A single-quality package degrades to a one-rung picker.
	blob, err := content.Classroom().BuildPackage(studio.Options{QStep: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddPackage("plain", blob); err != nil {
		t.Fatal(err)
	}
	g, _, err := c.ProgressiveOpenABR(ts.URL+"/pkg/plain", NewPackageCache(), ABRConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{""}; !reflect.DeepEqual(g.Tiers(), want) {
		t.Errorf("single-quality Tiers = %v", g.Tiers())
	}
	if got := g.ABR().Pick(10); got != "" {
		t.Errorf("one-rung picker picked %q", got)
	}
	// Legacy ranged transport carries exactly the canonical tier.
	raw := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.ServeContent(w, r, "plain.tkg", time.Now(), strings.NewReader(string(blob)))
	}))
	defer raw.Close()
	rg, _, err := c.ProgressiveOpen(raw.URL + "/plain.tkg")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{""}; !reflect.DeepEqual(rg.Tiers(), want) {
		t.Errorf("ranged Tiers = %v", rg.Tiers())
	}
	if _, err := rg.FetchSegmentTier(rg.Chapters()[1].Name, "low"); err == nil {
		t.Error("ranged game accepted a tier fetch")
	}
	if _, err := rg.EnableABR(ABRConfig{}); err == nil {
		t.Error("ranged game accepted ABR")
	}
}
