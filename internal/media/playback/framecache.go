package playback

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/media/raster"
)

// FrameCache is a shared cache of decoded frames, keyed by global frame
// index. Many consumers decode the same container — a play service hosts
// hundreds of sessions on one course, and every one of them renders the
// same handful of presentation frames — so the cache turns N identical
// GOP roll-forwards into one decode and N-1 memcpys.
//
// A cache is bound to exactly one container's content: attach it only to
// Videos opened from the same blob (Video.UseCache). It is safe for
// concurrent use; cached pixels are immutable once inserted and are
// copied out under the lock.
type FrameCache struct {
	maxBytes int64

	mu    sync.Mutex
	bytes int64
	byIdx map[int]*list.Element
	lru   list.List // front = most recently used; values are *cacheEntry

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cacheEntry struct {
	idx int
	f   *raster.Frame
}

// NewFrameCache returns a cache holding at most maxBytes of decoded
// pixels (<= 0 means a small default of 16 MiB). Eviction is LRU.
func NewFrameCache(maxBytes int64) *FrameCache {
	if maxBytes <= 0 {
		maxBytes = 16 << 20
	}
	return &FrameCache{maxBytes: maxBytes, byIdx: map[int]*list.Element{}}
}

// get copies frame i into dst if cached.
func (c *FrameCache) get(i int, dst *raster.Frame) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	el, ok := c.byIdx[i]
	if !ok {
		c.mu.Unlock()
		c.misses.Add(1)
		return false
	}
	c.lru.MoveToFront(el)
	dst.CopyFrom(el.Value.(*cacheEntry).f)
	c.mu.Unlock()
	c.hits.Add(1)
	return true
}

// put stores a private clone of f as frame i, evicting the least
// recently used frames past the byte budget.
func (c *FrameCache) put(i int, f *raster.Frame) {
	if c == nil {
		return
	}
	n := int64(len(f.Pix))
	if n == 0 || n > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byIdx[i]; ok {
		return
	}
	c.byIdx[i] = c.lru.PushFront(&cacheEntry{idx: i, f: f.Clone()})
	c.bytes += n
	for c.bytes > c.maxBytes {
		el := c.lru.Back()
		if el == nil {
			break
		}
		e := el.Value.(*cacheEntry)
		c.lru.Remove(el)
		delete(c.byIdx, e.idx)
		c.bytes -= int64(len(e.f.Pix))
		c.evictions.Add(1)
	}
}

// Stats reports cache traffic and occupancy. evictions counts frames
// pushed out by the byte budget over the cache's lifetime.
func (c *FrameCache) Stats() (hits, misses, evictions, frames, bytes int64) {
	if c == nil {
		return 0, 0, 0, 0, 0
	}
	c.mu.Lock()
	frames, bytes = int64(c.lru.Len()), c.bytes
	c.mu.Unlock()
	return c.hits.Load(), c.misses.Load(), c.evictions.Load(), frames, bytes
}
