// Command vgbl-server publishes game packages over HTTP (paper §2: students
// "easily access these resources via network"). It serves the bundled demo
// courses plus any .tkg files given on the command line, with range support
// so the progressive client can start playing before the download finishes,
// mounts the telemetry ingest service so playing clients (and the
// vgbl-loadtest fleet) can report their sessions to /telemetry/ingest and
// lecturers can read live aggregates from /telemetry/stats, and mounts the
// play service so thin clients can play server-hosted sessions through
// /play/create, /play/act, /play/state and /play/frame (live counters at
// /play/stats).
//
// All course bytes live in one content-addressed chunk store shared by the
// package server and the play service (segments shared across courses are
// stored once; -store-dir persists chunks on disk, -cache-bytes budgets
// the hot-chunk LRU tier). Delta-syncing clients use /manifest/<name> and
// /chunk/<hash> to transfer only chunks whose hashes changed.
//
// Hosted play sessions are durable: the TTL janitor snapshots-then-evicts
// into the chunk store, -checkpoint-every bounds what a crash can lose,
// and /play/create with resume=<session-id> reattaches a client to a
// frozen session. With -cluster N the play service runs as N nodes behind
// a consistent-hash gateway; session handoff between nodes rides the same
// snapshots.
//
// Every subsystem reports into one metrics registry served at /metrics
// (Prometheus text; ?format=json for the structured snapshot), request
// traces are inspectable at /debug/traces?trace=<id>, and -pprof mounts
// the standard profiler at /debug/pprof/. In cluster mode each play node
// additionally serves its own /metrics, /debug/traces and /healthz.
//
// With -ladder the demo courses are published as multi-tier quality
// ladders: one package, one manifest tree, one rung per quality tier, so
// adaptive (ABR) streaming clients pick a rung per segment while plain
// clients keep receiving the canonical full-quality video. Bytes served
// per tier are counted on the netstream_tier_bytes_total metrics family.
//
// Usage:
//
//	vgbl-server -addr 127.0.0.1:8807 extra1.tkg extra2.tkg
//	vgbl-server -cluster 3 -checkpoint-every 10s
//	vgbl-server -ladder
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // handlers on DefaultServeMux; mounted only with -pprof
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/blobstore"
	"repro/internal/content"
	"repro/internal/gamepack"
	"repro/internal/media/studio"
	"repro/internal/netstream"
	"repro/internal/obs"
	"repro/internal/playsvc"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8807", "listen address")
	storeDir := flag.String("store-dir", "", "on-disk chunk store directory (empty = in-memory)")
	cacheBytes := flag.Int64("cache-bytes", blobstore.DefaultCacheBytes, "hot-chunk LRU cache budget in bytes (negative disables)")
	ingestWorkers := flag.Int("ingest-workers", 8, "telemetry ingest workers")
	ingestQueue := flag.Int("ingest-queue", 512, "telemetry queue depth per worker (backpressure bound)")
	ingestIdle := flag.Duration("ingest-idle-timeout", 30*time.Minute, "fold telemetry sessions idle this long (negative disables)")
	playShards := flag.Int("play-shards", 32, "play service session shards")
	playTTL := flag.Duration("play-ttl", 10*time.Minute, "snapshot-and-evict hosted play sessions idle this long (negative disables)")
	playMax := flag.Int("play-max-sessions", 16384, "cap on live hosted play sessions (negative disables)")
	playInflight := flag.Int("play-max-inflight", 0, "shed play requests (429 + Retry-After) beyond this many in flight per node (0 disables)")
	checkpointEvery := flag.Duration("checkpoint-every", 30*time.Second, "periodically snapshot active play sessions so a crash loses at most this much progress (0 disables)")
	cluster := flag.Int("cluster", 0, "run N play-service nodes behind a consistent-hash gateway instead of one in-process manager")
	ladder := flag.Bool("ladder", false, "publish the demo courses as multi-tier quality ladders (adds video@<tier> rungs so ABR clients can pick a rung per segment; bytes served per tier land on netstream_tier_bytes_total)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof at /debug/pprof/")
	flag.Parse()

	// One content-addressed chunk store behind both the package server and
	// the play service: segments shared across courses are stored once, hot
	// chunks ride the LRU tier, and -store-dir persists the catalog.
	var backend blobstore.Backend = blobstore.NewMemory()
	if *storeDir != "" {
		disk, err := blobstore.NewDisk(*storeDir)
		if err != nil {
			fail(err)
		}
		backend = disk
	}
	store, err := blobstore.New(blobstore.Options{Backend: backend, CacheBytes: *cacheBytes})
	if err != nil {
		fail(err)
	}

	srv := netstream.NewServerWith(store)
	// One process-wide metric namespace: every subsystem registers its
	// families here and /metrics scrapes them all. In cluster mode each
	// play node additionally serves its own /metrics on its node URL.
	reg := obs.NewRegistry("vgbl")
	store.Register(reg)
	srv.Register(reg)
	// Hosted sessions are durable: one snapshot directory (and the chunk
	// store above) backs TTL snapshot-then-evict, crash checkpoints and —
	// in cluster mode — handoff between nodes.
	dir := playsvc.NewMemDir()
	nodeOpts := playsvc.Options{
		Shards:          *playShards,
		TTL:             *playTTL,
		MaxSessions:     *playMax,
		MaxInflight:     *playInflight,
		Store:           store,
		Dir:             dir,
		CheckpointEvery: *checkpointEvery,
	}
	// The play surface is either one in-process manager or a gateway over
	// N nodes; both publish courses the same way and mount at /play/.
	var playHandler http.Handler
	var traceHandler http.Handler
	var addCourse func(name string, blob []byte) error
	var addManifest func(name string, man *gamepack.Manifest) error
	var nodeURLs []string
	if *cluster > 0 {
		cl, err := playsvc.NewCluster(playsvc.ClusterOptions{Store: store, Dir: dir, Node: nodeOpts})
		if err != nil {
			fail(err)
		}
		defer cl.Close()
		for i := 0; i < *cluster; i++ {
			n, err := cl.StartNode()
			if err != nil {
				fail(err)
			}
			nodeURLs = append(nodeURLs, n.URL)
		}
		cl.Gateway().Register(reg)
		playHandler = cl.Gateway().Handler()
		traceHandler = cl.Gateway().Ring().Handler()
		addCourse = cl.AddCourse
		addManifest = cl.AddManifest
	} else {
		play := playsvc.NewManager(nodeOpts)
		defer play.Close()
		play.Register(reg)
		playHandler = play.Handler()
		traceHandler = play.Ring().Handler()
		addCourse = play.AddCourse
		addManifest = play.AddCourseFromManifest
	}
	publish := func(name string, blob []byte) {
		if err := srv.AddPackage(name, blob); err != nil {
			fail(err)
		}
		if err := addCourse(name, blob); err != nil {
			fail(err)
		}
	}
	for name, course := range map[string]*content.Course{
		"classroom": content.Classroom(),
		"museum":    content.Museum(),
		"street":    content.StreetDemo(),
	} {
		// Demo courses go through the store: chunks deposited once, then
		// both services open them by manifest. With -ladder each course is
		// recorded at every rung of the default quality ladder; the play
		// service keeps consuming the canonical rung.
		var man *gamepack.Manifest
		var err error
		if *ladder {
			man, err = course.PublishLadderTo(store, studio.Options{QStep: 8}, nil)
		} else {
			man, err = course.PublishTo(store, studio.Options{QStep: 8})
		}
		if err != nil {
			fail(err)
		}
		if err := srv.AddManifest(name, man); err != nil {
			fail(err)
		}
		if err := addManifest(name, man); err != nil {
			fail(err)
		}
	}
	srv.AddResource("umbrella", "UMBRELLAS: PORTABLE RAIN PROTECTION SINCE 1000 BC")
	srv.AddResource("ram", "RAM MODULES MUST MATCH THE BOARD'S SOCKET TYPE")

	for _, path := range flag.Args() {
		blob, err := os.ReadFile(path)
		if err != nil {
			fail(err)
		}
		publish(strings.TrimSuffix(filepath.Base(path), ".tkg"), blob)
	}

	svc := telemetry.NewService(telemetry.Options{Workers: *ingestWorkers, QueueDepth: *ingestQueue, IdleTimeout: *ingestIdle})
	defer svc.Close()
	svc.Register(reg)
	h := svc.Handler()
	if err := srv.Mount("/telemetry/", h); err != nil {
		fail(err)
	}
	if err := srv.Mount(telemetry.HealthPath, h); err != nil {
		fail(err)
	}
	if err := srv.Mount("/play/", playHandler); err != nil {
		fail(err)
	}
	// Shared classroom sessions live on the same play surface (same mux,
	// same gateway routing) but under their own path root.
	if err := srv.Mount("/room/", playHandler); err != nil {
		fail(err)
	}
	if err := srv.Mount("/metrics", reg.Handler()); err != nil {
		fail(err)
	}
	if err := srv.Mount("/debug/traces", traceHandler); err != nil {
		fail(err)
	}
	if *pprofOn {
		// net/http/pprof registered itself on the default mux at import.
		if err := srv.Mount("/debug/pprof/", http.DefaultServeMux); err != nil {
			fail(err)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	ss := srv.StoreStats()
	fmt.Printf("vgbl-server listening on http://%s\n", ln.Addr())
	fmt.Printf("  chunk store: %d chunks, %d bytes (%d dedup hits)\n", ss.Chunks, ss.StoredBytes, ss.DedupHits)
	fmt.Println("  packages:")
	for _, n := range srv.Names() {
		fmt.Printf("    http://%s/pkg/%s\n", ln.Addr(), n)
	}
	fmt.Printf("  listing:  http://%s/list\n", ln.Addr())
	fmt.Printf("  telemetry: http://%s%s (POST), http://%s%s\n", ln.Addr(), telemetry.IngestPath, ln.Addr(), telemetry.StatsPath)
	fmt.Printf("  play:     http://%s%s (POST), %s, %s, %s\n", ln.Addr(), playsvc.CreatePath, playsvc.ActPath, playsvc.FramePath, playsvc.StatsPath)
	fmt.Printf("  rooms:    http://%s%s (POST), %s, %s, %s\n", ln.Addr(), playsvc.RoomCreatePath, playsvc.RoomJoinPath, playsvc.RoomWatchPath, playsvc.RoomStatsPath)
	if *cluster > 0 {
		fmt.Printf("  cluster:  %d play nodes behind the /play/ gateway (checkpoint every %v)\n", *cluster, *checkpointEvery)
		for _, u := range nodeURLs {
			fmt.Printf("            %s/metrics\n", u)
		}
	}
	fmt.Printf("  metrics:  http://%s/metrics (?format=json), traces at /debug/traces\n", ln.Addr())
	if *pprofOn {
		fmt.Printf("  pprof:    http://%s/debug/pprof/\n", ln.Addr())
	}
	fmt.Printf("  health:   http://%s%s\n", ln.Addr(), telemetry.HealthPath)
	if err := http.Serve(ln, srv); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "vgbl-server:", err)
	os.Exit(1)
}
