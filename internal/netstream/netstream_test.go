package netstream

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/gamepack"
	"repro/internal/media/container"
	"repro/internal/media/playback"
	"repro/internal/media/studio"
	"repro/internal/media/synth"
)

func testServer(t *testing.T) (*httptest.Server, []byte) {
	t.Helper()
	blob, err := content.Classroom().BuildPackage(studio.Options{QStep: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer()
	if err := srv.AddPackage("classroom", blob); err != nil {
		t.Fatal(err)
	}
	srv.AddResource("umbrella", "UMBRELLAS KEEP YOU DRY")
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, blob
}

func TestServerValidation(t *testing.T) {
	srv := NewServer()
	if err := srv.AddPackage("bad name", []byte("x")); err == nil {
		t.Error("bad name accepted")
	}
	if err := srv.AddPackage("junk", []byte("not a package")); err == nil {
		t.Error("junk package accepted")
	}
}

func TestListAndNotFound(t *testing.T) {
	ts, _ := testServer(t)
	c := &Client{}
	body, _, err := c.FetchResource(ts.URL + "/list")
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(body) != "classroom" {
		t.Errorf("list = %q", body)
	}
	if _, _, err := c.Download(ts.URL + "/pkg/ghost"); err == nil {
		t.Error("missing package downloadable")
	}
	if _, _, err := c.FetchResource(ts.URL + "/res/ghost"); err == nil {
		t.Error("missing resource fetchable")
	}
}

func TestDownloadWholePackage(t *testing.T) {
	ts, blob := testServer(t)
	c := &Client{}
	got, st, err := c.Download(ts.URL + "/pkg/classroom")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(blob) {
		t.Fatal("downloaded bytes differ")
	}
	if st.BytesFetched != len(blob) || st.Requests != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestProgressiveOpenFetchesLess(t *testing.T) {
	ts, blob := testServer(t)
	c := &Client{}
	g, st, err := c.ProgressiveOpen(ts.URL + "/pkg/classroom")
	if err != nil {
		t.Fatal(err)
	}
	if g.Project.Title != "Fix The Classroom Computer" {
		t.Error("project lost")
	}
	if !g.HasSegment("seg-classroom") {
		t.Error("start segment not fetched")
	}
	if g.HasSegment("seg-market") {
		t.Error("non-start segment fetched eagerly")
	}
	// Startup never needs the whole package.
	if st.BytesFetched >= len(blob) {
		t.Errorf("progressive fetched %d of %d bytes", st.BytesFetched, len(blob))
	}
	if st.Requests < 3 {
		t.Errorf("requests = %d, expected several ranged fetches", st.Requests)
	}
}

func TestProgressiveStartupScalesWithSegmentNotFilm(t *testing.T) {
	// A film with many segments: the start segment is a small slice of the
	// whole, so progressive startup should fetch a small fraction — E8's
	// central claim.
	film := synth.Generate(synth.Spec{
		W: 96, H: 64, FPS: 10,
		Shots: 10, MinShotFrames: 20, MaxShotFrames: 24,
		Seed: 12,
	})
	video, err := studio.Record(film, studio.Options{QStep: 6, GOP: 10, ShotMarkers: true})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := container.Open(video)
	chs := r.Chapters()
	p := core.NewProject("Long Course")
	p.StartScenario = "s0"
	for i, ch := range chs {
		p.Scenarios = append(p.Scenarios, &core.Scenario{
			ID: fmt.Sprintf("s%d", i), Name: ch.Name, Segment: ch.Name,
		})
	}
	blob, err := gamepack.Build(p, video)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer()
	if err := srv.AddPackage("long", blob); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := &Client{}
	_, st, err := c.ProgressiveOpen(ts.URL + "/pkg/long")
	if err != nil {
		t.Fatal(err)
	}
	if st.BytesFetched >= len(blob)/2 {
		t.Errorf("10-segment startup fetched %d of %d bytes (>=50%%)", st.BytesFetched, len(blob))
	}
}

func TestProgressiveFramesMatchLocalDecode(t *testing.T) {
	ts, blob := testServer(t)
	c := &Client{}
	g, _, err := c.ProgressiveOpen(ts.URL + "/pkg/classroom")
	if err != nil {
		t.Fatal(err)
	}
	// Local reference decode.
	pkg, err := gamepack.Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	v, err := playback.OpenVideo(pkg.Video, 1)
	if err != nil {
		t.Fatal(err)
	}
	ch, _ := g.head.ChapterByName("seg-classroom")
	for _, i := range []int{ch.Start, ch.Start + 3, ch.End - 1} {
		remote, err := g.FrameAt(i)
		if err != nil {
			t.Fatalf("FrameAt(%d): %v", i, err)
		}
		local, err := v.FrameAt(i)
		if err != nil {
			t.Fatal(err)
		}
		if !remote.Equal(local) {
			t.Fatalf("frame %d differs between remote and local decode", i)
		}
	}
	// Frames outside fetched segments fail until fetched.
	market, _ := g.head.ChapterByName("seg-market")
	if _, err := g.FrameAt(market.End - 1); err == nil {
		t.Fatal("unfetched frame decoded")
	}
	if _, err := g.FetchSegment("seg-market"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.FrameAt(market.End - 1); err != nil {
		t.Fatalf("after fetch: %v", err)
	}
	if _, err := g.FetchSegment("seg-ghost"); err == nil {
		t.Fatal("unknown segment fetched")
	}
}

func TestFetchResource(t *testing.T) {
	ts, _ := testServer(t)
	c := &Client{}
	body, st, err := c.FetchResource(ts.URL + "/res/umbrella")
	if err != nil {
		t.Fatal(err)
	}
	if body != "UMBRELLAS KEEP YOU DRY" {
		t.Errorf("body = %q", body)
	}
	if st.BytesFetched != len(body) {
		t.Errorf("stats = %+v", st)
	}
}

func TestByteReaderSeek(t *testing.T) {
	r := newByteReader([]byte("hello world"))
	if n, _ := r.Seek(6, 0); n != 6 {
		t.Fatal("seek start")
	}
	buf := make([]byte, 5)
	r.Read(buf)
	if string(buf) != "world" {
		t.Fatalf("read %q", buf)
	}
	if _, err := r.Seek(-100, 0); err == nil {
		t.Error("negative seek accepted")
	}
	if n, _ := r.Seek(0, 2); n != 11 {
		t.Error("seek end")
	}
	if _, err := r.Read(buf); err == nil {
		t.Error("read past end")
	}
}

func TestETagNotModified(t *testing.T) {
	ts, blob := testServer(t)
	// First GET reports a validator.
	resp, err := http.Get(ts.URL + "/pkg/classroom")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on package response")
	}
	// A conditional GET with the validator gets 304 and no body.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/pkg/classroom", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET = %s, want 304", resp.Status)
	}
	if len(body) != 0 {
		t.Fatalf("304 carried %d body bytes", len(body))
	}
	// A stale validator still gets the full package.
	req.Header.Set("If-None-Match", `"deadbeef"`)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) != len(blob) {
		t.Fatalf("stale validator: %s, %d bytes (want 200, %d)", resp.Status, len(body), len(blob))
	}
}

func TestDownloadCached(t *testing.T) {
	ts, blob := testServer(t)
	c := &Client{}
	cache := NewPackageCache()
	got, st, err := c.DownloadCached(ts.URL+"/pkg/classroom", cache)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(blob) {
		t.Fatal("first fetch differs")
	}
	if st.BytesFetched != len(blob) || st.NotModified != 0 {
		t.Errorf("first fetch stats = %+v", st)
	}
	// Second fetch revalidates: one request, no payload.
	got, st, err = c.DownloadCached(ts.URL+"/pkg/classroom", cache)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(blob) {
		t.Fatal("cached fetch differs")
	}
	if st.Requests != 1 || st.BytesFetched != 0 || st.NotModified != 1 {
		t.Errorf("cached fetch stats = %+v", st)
	}
}

func TestMount(t *testing.T) {
	srv := NewServer()
	if err := srv.Mount("/pkg/", http.NotFoundHandler()); err == nil {
		t.Error("shadowing /pkg/ accepted")
	}
	if err := srv.Mount("/pkg/x", http.NotFoundHandler()); err == nil {
		t.Error("mount inside /pkg/ accepted")
	}
	if err := srv.Mount("/", http.NotFoundHandler()); err == nil {
		t.Error("root subtree mount accepted")
	}
	if err := srv.Mount("/list", http.NotFoundHandler()); err == nil {
		t.Error("shadowing /list accepted")
	}
	if err := srv.Mount("/listing", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})); err != nil {
		t.Errorf("non-shadowing /listing rejected: %v", err)
	}
	if err := srv.Mount("healthz", http.NotFoundHandler()); err == nil {
		t.Error("relative pattern accepted")
	}
	if err := srv.Mount("/healthz", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})); err != nil {
		t.Fatal(err)
	}
	if err := srv.Mount("/telemetry/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "telemetry:"+r.URL.Path)
	})); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	for _, tc := range []struct{ path, want string }{
		{"/healthz", "ok"},
		{"/telemetry/stats", "telemetry:/telemetry/stats"},
	} {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if string(body) != tc.want {
			t.Errorf("%s = %q, want %q", tc.path, body, tc.want)
		}
	}
	// /healthz/extra is not matched by the exact /healthz mount.
	resp, err := http.Get(ts.URL + "/healthz/extra")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/healthz/extra = %s, want 404", resp.Status)
	}
}
