package playsvc

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/media/raster"
	"repro/internal/obs"
)

// maxBody bounds accepted request bodies; play requests are tiny.
const maxBody = 1 << 20

// Handler returns the play service's HTTP surface (CreatePath, ActPath,
// StatePath, FramePath, StatsPath). Mount it at "/play/" on a
// netstream.Server or any mux; repeated calls return the same handler.
func (m *Manager) Handler() http.Handler {
	m.handlerOnce.Do(func() {
		mux := http.NewServeMux()
		mux.HandleFunc(CreatePath, m.handleCreate)
		mux.HandleFunc(ActPath, m.handleAct)
		mux.HandleFunc(ActV2Path, m.handleActV2)
		mux.HandleFunc(StatePath, m.handleState)
		mux.HandleFunc(FramePath, m.handleFrame)
		mux.HandleFunc(StatsPath, m.handleStats)
		mux.HandleFunc(HandoffPath, m.handleHandoff)
		mux.HandleFunc(DrainPath, m.handleDrain)
		mux.HandleFunc(RecoverPath, m.handleRecover)
		m.handler = mux
	})
	return m.handler
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// writeError answers with the error's status; a protocol error carrying
// a Retry-After hint (load shedding) advertises it so clients and the
// gateway back off for a bounded, server-chosen interval instead of
// guessing.
func writeError(w http.ResponseWriter, err error) {
	if pe, ok := err.(*Error); ok && pe.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(pe.RetryAfter))
	}
	http.Error(w, err.Error(), httpStatus(err))
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBody)).Decode(v); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func (m *Manager) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	// resume=<session-id> in the query is the curl-friendly spelling of
	// the body field.
	if v := r.URL.Query().Get("resume"); v != "" && req.Resume == "" {
		req.Resume = v
	}
	req.Trace = obs.TraceFromRequest(r)
	t0 := time.Now()
	reply, err := m.Create(&req)
	m.ring.Record(req.Trace, "play.create", t0, err)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, reply)
}

// handleHandoff freezes one session into the shared snapshot store (the
// gateway calls this on a session's old owner when ownership moves).
func (m *Manager) handleHandoff(w http.ResponseWriter, r *http.Request) {
	var req HandoffRequest
	if !decodeBody(w, r, &req) {
		return
	}
	t0 := time.Now()
	err := m.Freeze(req.Session)
	m.ring.Record(obs.TraceFromRequest(r), "play.handoff", t0, err)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, map[string]string{"session": req.Session, "state": "frozen"})
}

// handleRecover thaws a session even from a checkpoint entry; the caller
// asserts its owning node crashed (see Manager.Recover).
func (m *Manager) handleRecover(w http.ResponseWriter, r *http.Request) {
	var req HandoffRequest
	if !decodeBody(w, r, &req) {
		return
	}
	t0 := time.Now()
	err := m.Recover(req.Session)
	m.ring.Record(obs.TraceFromRequest(r), "play.recover", t0, err)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, map[string]string{"session": req.Session, "state": "recovered"})
}

// handleDrain freezes every hosted session — the graceful-removal step a
// gateway runs before a node leaves the cluster.
func (m *Manager) handleDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, map[string]int{"drained": m.DrainAll()})
}

func (m *Manager) handleAct(w http.ResponseWriter, r *http.Request) {
	var req ActRequest
	if !decodeBody(w, r, &req) {
		return
	}
	req.Trace = obs.TraceFromRequest(r)
	reply, err := m.Act(&req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, reply)
}

// handleActV2 is the binary act endpoint: a framed batch in, a framed
// coalesced reply out. Frame-level rejections (bad magic, bad CRC,
// unknown act kind) are 400s; everything past the parse shares the JSON
// path's semantics, including act-level errors riding inside the reply.
func (m *Manager) handleActV2(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	req, err := ParseActFrame(body)
	if err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	req.Trace = obs.TraceFromRequest(r)
	out, err := m.ActBatch(req)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", FrameContentType)
	w.Write(EncodeReplyFrame(out))
}

func (m *Manager) handleState(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	seenE, _ := strconv.Atoi(q.Get("events"))
	seenM, _ := strconv.Atoi(q.Get("messages"))
	reply, err := m.stateOf(obs.TraceFromRequest(r), q.Get("session"), seenE, seenM)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, reply)
}

// handleFrame serves the session's presentation frame as raw 24-bit RGB
// with the geometry in headers. ?advance=N ticks playback first, so a
// steady client fetches "the next frame" in one request.
func (m *Manager) handleFrame(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	advance, _ := strconv.Atoi(q.Get("advance"))
	if advance < 0 {
		http.Error(w, "negative advance", http.StatusBadRequest)
		return
	}
	err := m.withFrame(obs.TraceFromRequest(r), q.Get("session"), advance, func(f *raster.Frame, tick int) error {
		h := w.Header()
		h.Set("Content-Type", "application/octet-stream")
		h.Set("X-Frame-Width", strconv.Itoa(f.W))
		h.Set("X-Frame-Height", strconv.Itoa(f.H))
		h.Set("X-Frame-Tick", strconv.Itoa(tick))
		h.Set("Content-Length", strconv.Itoa(len(f.Pix)))
		_, werr := w.Write(f.Pix)
		return werr
	})
	if err != nil {
		// Too late for a status line if the body started; ignore that case.
		writeError(w, err)
	}
}

func (m *Manager) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m.Snapshot()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
