package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// kind discriminates metric families.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled member of a family. Exactly one of value/hist is
// set; value covers counters and gauges (owned instruments and func
// sources alike read through a closure).
type series struct {
	labels []Label
	value  func() int64
	hist   *Histogram
	owned  any // the *Counter/*Gauge behind value when the registry built it
}

// family is one named metric with its labeled series.
type family struct {
	name, help, unit string
	kind             kind
	series           []*series
}

// Registry is one process's (or one cluster node's) metric namespace. All
// methods are safe for concurrent use; registration is expected at wiring
// time, scraping at runtime.
type Registry struct {
	namespace string

	mu       sync.Mutex
	families []*family // registration order, the exposition order
	index    map[string]*family
}

// NewRegistry builds an empty registry. namespace prefixes every exposed
// metric name ("vgbl" → vgbl_playsvc_acts_total).
func NewRegistry(namespace string) *Registry {
	return &Registry{namespace: namespace, index: map[string]*family{}}
}

func labelsEqual(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// register finds or creates the family and appends/returns the series for
// the exact label set. Re-registering the same (name, labels) returns the
// existing series; re-registering a name with a different kind panics —
// that is a wiring bug, not a runtime condition.
func (r *Registry) register(name, help, unit string, k kind, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.index[name]
	if f == nil {
		f = &family{name: name, help: help, unit: unit, kind: k}
		r.index[name] = f
		r.families = append(r.families, f)
	} else if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, k, f.kind))
	}
	for _, s := range f.series {
		if labelsEqual(s.labels, labels) {
			return s
		}
	}
	s := &series{labels: append([]Label(nil), labels...)}
	f.series = append(f.series, s)
	return s
}

// Counter registers (or finds) a counter series and returns its
// instrument.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, "", kindCounter, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.value == nil {
		c := NewCounter()
		s.value = c.Value
		s.owned = c
	}
	c, _ := s.owned.(*Counter)
	return c
}

// Gauge registers (or finds) a gauge series and returns its instrument.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, "", kindGauge, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.value == nil {
		g := NewGauge()
		s.value = g.Value
		s.owned = g
	}
	g, _ := s.owned.(*Gauge)
	return g
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for counters that already live as striped atomics in
// a service (playsvc shard counters, gateway routing stats). fn must be
// monotonically non-decreasing.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	s := r.register(name, help, "", kindCounter, labels)
	r.mu.Lock()
	s.value = fn
	r.mu.Unlock()
}

// GaugeFunc registers a gauge sourced from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...Label) {
	s := r.register(name, help, "", kindGauge, labels)
	r.mu.Lock()
	s.value = fn
	r.mu.Unlock()
}

// Histogram registers a new histogram series and returns its instrument.
// unit declares how observed values scale in the exposition: "seconds"
// means observations are nanoseconds and are divided by 1e9 on output;
// anything else ("bytes", "") is exported raw.
func (r *Registry) Histogram(name, help, unit string, bounds []int64, labels ...Label) *Histogram {
	s := r.register(name, help, unit, kindHistogram, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.hist == nil {
		s.hist = NewHistogram(bounds)
	}
	return s.hist
}

// RegisterHistogram attaches a component-owned histogram (built with
// NewHistogram at construction time, observed whether or not anything
// scrapes) to the registry.
func (r *Registry) RegisterHistogram(name, help, unit string, h *Histogram, labels ...Label) {
	s := r.register(name, help, unit, kindHistogram, labels)
	r.mu.Lock()
	s.hist = h
	r.mu.Unlock()
}

// snapshotFamilies copies the family/series structure under the lock so
// exposition can read values without holding it.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, len(r.families))
	for i, f := range r.families {
		cp := &family{name: f.name, help: f.help, unit: f.unit, kind: f.kind}
		cp.series = append(cp.series, f.series...)
		out[i] = cp
	}
	return out
}

// SeriesSnapshot is one labeled series in a registry snapshot.
type SeriesSnapshot struct {
	Labels    map[string]string  `json:"labels,omitempty"`
	Value     *int64             `json:"value,omitempty"`
	Histogram *HistogramSnapshot `json:"histogram,omitempty"`
}

// MetricSnapshot is one family in a registry snapshot. Name carries the
// namespace prefix, matching the Prometheus exposition.
type MetricSnapshot struct {
	Name   string           `json:"name"`
	Kind   string           `json:"kind"`
	Help   string           `json:"help,omitempty"`
	Unit   string           `json:"unit,omitempty"`
	Series []SeriesSnapshot `json:"series"`
}

// RegistrySnapshot is the ?format=json payload of the /metrics endpoint —
// what the fleet's scraper decodes to build percentile tables.
type RegistrySnapshot struct {
	Namespace string           `json:"namespace"`
	Metrics   []MetricSnapshot `json:"metrics"`
}

// Metric finds a family by its fully-prefixed name (nil when absent).
func (s *RegistrySnapshot) Metric(name string) *MetricSnapshot {
	for i := range s.Metrics {
		if s.Metrics[i].Name == name {
			return &s.Metrics[i]
		}
	}
	return nil
}

// prefixed joins namespace and metric name.
func (r *Registry) prefixed(name string) string {
	if r.namespace == "" {
		return name
	}
	return r.namespace + "_" + name
}

// Snapshot reads every series.
func (r *Registry) Snapshot() RegistrySnapshot {
	out := RegistrySnapshot{Namespace: r.namespace}
	for _, f := range r.snapshotFamilies() {
		m := MetricSnapshot{Name: r.prefixed(f.name), Kind: f.kind.String(), Help: f.help, Unit: f.unit}
		for _, s := range f.series {
			ss := SeriesSnapshot{}
			if len(s.labels) > 0 {
				ss.Labels = map[string]string{}
				for _, l := range s.labels {
					ss.Labels[l.Key] = l.Value
				}
			}
			switch {
			case s.hist != nil:
				hs := s.hist.Snapshot()
				ss.Histogram = &hs
			case s.value != nil:
				v := s.value()
				ss.Value = &v
			default:
				continue
			}
			m.Series = append(m.Series, ss)
		}
		out.Metrics = append(out.Metrics, m)
	}
	return out
}

// escapeLabel escapes a label value for the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// formatLabels renders {k="v",...}; extra appends one more pair (le).
func formatLabels(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabel(l.Value))
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}

// scaled renders a bound or sum in the family's exposition unit.
func scaled(unit string, v int64) string {
	if unit == "seconds" {
		return strconv.FormatFloat(float64(v)/1e9, 'g', -1, 64)
	}
	return strconv.FormatInt(v, 10)
}

// WritePrometheus writes the text exposition format (# HELP / # TYPE plus
// one line per series; histograms expand to _bucket/_sum/_count).
func (r *Registry) WritePrometheus(w io.Writer) {
	for _, f := range r.snapshotFamilies() {
		name := r.prefixed(f.name)
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", name, f.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", name, f.kind.String())
		for _, s := range f.series {
			if f.kind == kindHistogram {
				if s.hist == nil {
					continue
				}
				hs := s.hist.Snapshot()
				var cum int64
				for i, c := range hs.Counts {
					cum += c
					le := "+Inf"
					if i < len(hs.Bounds) {
						le = scaled(f.unit, hs.Bounds[i])
					}
					fmt.Fprintf(w, "%s_bucket%s %d\n", name, formatLabels(s.labels, "le", le), cum)
				}
				fmt.Fprintf(w, "%s_sum%s %s\n", name, formatLabels(s.labels, "", ""), scaled(f.unit, hs.Sum))
				fmt.Fprintf(w, "%s_count%s %d\n", name, formatLabels(s.labels, "", ""), hs.Count)
				continue
			}
			if s.value == nil {
				continue
			}
			fmt.Fprintf(w, "%s%s %d\n", name, formatLabels(s.labels, "", ""), s.value())
		}
	}
}

// Handler serves the registry: Prometheus text by default,
// ?format=json for the structured snapshot.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(r.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
