// Command vgbl-server publishes game packages over HTTP (paper §2: students
// "easily access these resources via network"). It serves the bundled demo
// courses plus any .tkg files given on the command line, with range support
// so the progressive client can start playing before the download finishes.
//
// Usage:
//
//	vgbl-server -addr 127.0.0.1:8807 extra1.tkg extra2.tkg
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/content"
	"repro/internal/media/studio"
	"repro/internal/netstream"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8807", "listen address")
	flag.Parse()

	srv := netstream.NewServer()
	for name, course := range map[string]*content.Course{
		"classroom": content.Classroom(),
		"museum":    content.Museum(),
		"street":    content.StreetDemo(),
	} {
		blob, err := course.BuildPackage(studio.Options{QStep: 8, Workers: 2})
		if err != nil {
			fail(err)
		}
		if err := srv.AddPackage(name, blob); err != nil {
			fail(err)
		}
	}
	srv.AddResource("umbrella", "UMBRELLAS: PORTABLE RAIN PROTECTION SINCE 1000 BC")
	srv.AddResource("ram", "RAM MODULES MUST MATCH THE BOARD'S SOCKET TYPE")

	for _, path := range flag.Args() {
		blob, err := os.ReadFile(path)
		if err != nil {
			fail(err)
		}
		name := strings.TrimSuffix(filepath.Base(path), ".tkg")
		if err := srv.AddPackage(name, blob); err != nil {
			fail(err)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	fmt.Printf("vgbl-server listening on http://%s\n", ln.Addr())
	fmt.Println("  packages:")
	for _, n := range srv.Names() {
		fmt.Printf("    http://%s/pkg/%s\n", ln.Addr(), n)
	}
	fmt.Printf("  listing:  http://%s/list\n", ln.Addr())
	if err := http.Serve(ln, srv); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "vgbl-server:", err)
	os.Exit(1)
}
