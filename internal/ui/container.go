package ui

import (
	"fmt"

	"repro/internal/media/raster"
)

// Panel is a container widget with an optional title bar and border. Its
// children are painted in insertion order (later = on top) and hit-tested
// in reverse.
type Panel struct {
	Box
	Title    string
	BgColor  raster.RGB
	Border   bool
	children []Widget
}

// NewPanel creates an empty panel.
func NewPanel(id string, b raster.Rect, title string) *Panel {
	return &Panel{Box: NewBox(id, b), Title: title, BgColor: ThemePanel, Border: true}
}

// Add appends a child (child bounds are window-absolute).
func (p *Panel) Add(w Widget) { p.children = append(p.children, w) }

// Remove deletes a child by identity.
func (p *Panel) Remove(w Widget) {
	for i, c := range p.children {
		if c == w {
			p.children = append(p.children[:i], p.children[i+1:]...)
			return
		}
	}
}

// Clear removes all children.
func (p *Panel) Clear() { p.children = nil }

// Children returns the child list (live slice; do not mutate).
func (p *Panel) Children() []Widget { return p.children }

// TitleBarHeight is the pixel height of a panel/window title bar.
const TitleBarHeight = 11

// Content returns the panel's interior rectangle (inside border and title
// bar).
func (p *Panel) Content() raster.Rect {
	r := p.Bounds().Inset(1)
	if p.Title != "" {
		r.Y += TitleBarHeight
		r.H -= TitleBarHeight
	}
	return r
}

// Paint draws the panel chrome and its children.
func (p *Panel) Paint(f *raster.Frame) {
	r := p.Bounds()
	f.FillRect(r, p.BgColor)
	if p.Title != "" {
		bar := raster.Rect{X: r.X + 1, Y: r.Y + 1, W: r.W - 2, H: TitleBarHeight - 1}
		f.FillRect(bar, ThemeTitle)
		f.DrawTextClipped(bar.X+2, bar.Y+2, raster.FitText(p.Title, bar.W-4), ThemeTitleText, bar)
	}
	if p.Border {
		f.DrawRect(r, ThemeBorder)
	}
	for _, c := range p.children {
		if c.Visible() {
			c.Paint(f)
		}
	}
}

// Window is the event-dispatching root. It owns a widget tree, an optional
// popup layer (hit-tested first, painted last), and the keyboard focus.
type Window struct {
	Title string
	W, H  int
	Root  *Panel
	popup Widget
	focus Focusable
}

// NewWindow creates a window with an empty root panel.
func NewWindow(title string, w, h int) *Window {
	root := NewPanel("root", raster.Rect{X: 0, Y: 0, W: w, H: h}, "")
	root.BgColor = ThemeBg
	root.Border = false
	return &Window{Title: title, W: w, H: h, Root: root}
}

// Add appends a top-level widget.
func (w *Window) Add(widget Widget) { w.Root.Add(widget) }

// ShowPopup installs a modal popup widget: painted above everything and
// receiving all events until closed. The paper's text/image/web popups use
// this layer.
func (w *Window) ShowPopup(widget Widget) { w.popup = widget }

// ClosePopup removes the popup layer.
func (w *Window) ClosePopup() { w.popup = nil }

// Popup returns the active popup, if any.
func (w *Window) Popup() Widget { return w.popup }

// Render paints the whole window into a fresh frame: title bar, widget
// tree, then the popup layer.
func (w *Window) Render() *raster.Frame {
	f := raster.New(w.W, w.H)
	w.Root.Paint(f)
	if w.Title != "" {
		bar := raster.Rect{X: 0, Y: 0, W: w.W, H: TitleBarHeight}
		f.FillRect(bar, ThemeTitle)
		f.DrawTextClipped(2, 2, raster.FitText(w.Title, w.W-4), ThemeTitleText, bar)
	}
	if w.popup != nil && w.popup.Visible() {
		w.popup.Paint(f)
	}
	return f
}

// Snapshot renders the window and converts it to ASCII art — the headless
// stand-in for a screenshot.
func (w *Window) Snapshot(cols, rows int) string {
	return w.Render().ASCII(cols, rows)
}

// WidgetAt hit-tests the window: the popup first, then the widget tree
// topmost-first. It returns nil when nothing visible is hit.
func (w *Window) WidgetAt(x, y int) Widget {
	if w.popup != nil && w.popup.Visible() && w.popup.Bounds().Contains(x, y) {
		return deepestAt(w.popup, x, y)
	}
	if w.popup != nil && w.popup.Visible() {
		// Modal: the popup swallows everything.
		return nil
	}
	return deepestAt(w.Root, x, y)
}

// deepestAt descends into containers, preferring later (topmost) children.
func deepestAt(wd Widget, x, y int) Widget {
	if !wd.Visible() || !wd.Bounds().Contains(x, y) {
		return nil
	}
	if c, ok := wd.(Container); ok {
		kids := c.Children()
		for i := len(kids) - 1; i >= 0; i-- {
			if hit := deepestAt(kids[i], x, y); hit != nil {
				return hit
			}
		}
	}
	return wd
}

// Click dispatches a full Down+Click at (x, y) and returns the widget that
// received it (nil if none). Clicking a Focusable moves keyboard focus.
func (w *Window) Click(x, y int) Widget {
	target := w.WidgetAt(x, y)
	if target == nil {
		return nil
	}
	if f, ok := target.(Focusable); ok {
		w.SetFocus(f)
	} else {
		w.SetFocus(nil)
	}
	target.Mouse(MouseEvent{X: x, Y: y, Kind: MouseDown})
	target.Mouse(MouseEvent{X: x, Y: y, Kind: MouseClick})
	return target
}

// SetFocus moves keyboard focus (nil clears it).
func (w *Window) SetFocus(f Focusable) {
	if w.focus == f {
		return
	}
	if w.focus != nil {
		w.focus.SetFocused(false)
	}
	w.focus = f
	if f != nil {
		f.SetFocused(true)
	}
}

// Focus returns the focused widget, if any.
func (w *Window) Focus() Focusable { return w.focus }

// Key sends a keyboard event to the focused widget. It reports whether the
// event was consumed.
func (w *Window) Key(ev KeyEvent) bool {
	if w.focus == nil {
		return false
	}
	return w.focus.Keyboard(ev)
}

// TypeString sends each rune of s as a key event (test/tool convenience).
func (w *Window) TypeString(s string) {
	for _, r := range s {
		w.Key(KeyEvent{Rune: r})
	}
}

// DragDrop performs a drag gesture from (x0, y0) to (x1, y1): the deepest
// DragSource at the origin provides the payload and the deepest DropTarget
// at the destination may accept it. It returns an error describing why the
// gesture failed, or nil on success.
func (w *Window) DragDrop(x0, y0, x1, y1 int) error {
	src := w.WidgetAt(x0, y0)
	if src == nil {
		return fmt.Errorf("ui: nothing to drag at (%d,%d)", x0, y0)
	}
	ds, ok := src.(DragSource)
	if !ok {
		return fmt.Errorf("ui: widget %q is not draggable", src.ID())
	}
	payload, ok := ds.DragPayload(x0, y0)
	if !ok {
		return fmt.Errorf("ui: no drag payload at (%d,%d)", x0, y0)
	}
	// The drop target may be underneath the source; search the tree for the
	// deepest DropTarget containing the destination.
	target := dropTargetAt(w.Root, x1, y1)
	if w.popup != nil && w.popup.Visible() {
		target = dropTargetAt(w.popup, x1, y1)
	}
	if target == nil {
		return fmt.Errorf("ui: no drop target at (%d,%d)", x1, y1)
	}
	if !target.AcceptDrop(payload, x1, y1) {
		return fmt.Errorf("ui: %q rejected payload %q", target.ID(), payload)
	}
	return nil
}

// dropTargetAt finds the deepest visible DropTarget containing (x, y).
func dropTargetAt(wd Widget, x, y int) DropTarget {
	if !wd.Visible() || !wd.Bounds().Contains(x, y) {
		return nil
	}
	if c, ok := wd.(Container); ok {
		kids := c.Children()
		for i := len(kids) - 1; i >= 0; i-- {
			if dt := dropTargetAt(kids[i], x, y); dt != nil {
				return dt
			}
		}
	}
	if dt, ok := wd.(DropTarget); ok {
		return dt
	}
	return nil
}

// FindByID searches the widget tree (and popup) depth-first for an id.
func (w *Window) FindByID(id string) Widget {
	if w.popup != nil {
		if hit := findByID(w.popup, id); hit != nil {
			return hit
		}
	}
	return findByID(w.Root, id)
}

func findByID(wd Widget, id string) Widget {
	if wd.ID() == id {
		return wd
	}
	if c, ok := wd.(Container); ok {
		for _, k := range c.Children() {
			if hit := findByID(k, id); hit != nil {
				return hit
			}
		}
	}
	return nil
}
