package fleet

import (
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// TestFleetMirrorMatchesInteractiveTotals pins the thick-client mode to the
// thin one: the same seeded fleet played through mirror clients (local
// replica answers reads, acts ship as reconciled batches) must produce
// byte-for-byte the same per-learner analytics digests as the flush-per-act
// pipelined fleet, including watch cadence and quiz outcomes.
func TestFleetMirrorMatchesInteractiveTotals(t *testing.T) {
	run := func(mirror bool) *Summary {
		ts, svc, _ := liveStack(t, telemetry.Options{Workers: 4, QueueDepth: 256})
		sum, err := Run(Config{
			ServerURL:    ts.URL,
			Package:      "classroom",
			Learners:     8,
			Interactive:  true,
			PlayBinary:   true,
			PlayPipeline: 16,
			PlayMirror:   mirror,
			Policy:       sim.GuidedFactory,
			Sim:          sim.Config{MaxSteps: 12, TicksPerStep: 1, Patience: 30, Seed: 977, WatchEvery: 4},
			FlushEvery:   8,
		})
		if err != nil {
			t.Fatal(err)
		}
		if sum.Failed != 0 {
			t.Fatalf("mirror=%v failures: %v", mirror, sum.Errors)
		}
		if !svc.Quiesce(10 * time.Second) {
			t.Fatal("drain")
		}
		return sum
	}
	plain, mir := run(false), run(true)
	for i := range plain.Reports {
		var a, b analytics.Rolling
		a.Add(plain.Reports[i])
		b.Add(mir.Reports[i])
		if a.Events != b.Events || a.Knowledge != b.Knowledge || a.Completed != b.Completed ||
			a.Ticks != b.Ticks || a.QuizCorrect != b.QuizCorrect {
			t.Errorf("learner %d diverged:\nplain  %+v\nmirror %+v", i, a, b)
		}
	}
	if plain.Steps != mir.Steps {
		t.Errorf("steps: plain %d, mirror %d", plain.Steps, mir.Steps)
	}
}
