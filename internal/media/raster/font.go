package raster

import "strings"

// Glyph metrics for the built-in 5×7 bitmap font.
const (
	GlyphW   = 5 // pixel width of one glyph
	GlyphH   = 7 // pixel height of one glyph
	GlyphGap = 1 // horizontal spacing between glyphs
)

// glyphs maps a rune to its 7-row bitmap. Each row string is 5 characters;
// '#' marks a lit pixel. Lowercase letters render as uppercase (the paper's
// mid-2000s authoring UI used a single-case bitmap face, and one case keeps
// the table half the size).
var glyphs = map[rune][GlyphH]string{
	'A':  {" ### ", "#   #", "#   #", "#####", "#   #", "#   #", "#   #"},
	'B':  {"#### ", "#   #", "#   #", "#### ", "#   #", "#   #", "#### "},
	'C':  {" ### ", "#   #", "#    ", "#    ", "#    ", "#   #", " ### "},
	'D':  {"#### ", "#   #", "#   #", "#   #", "#   #", "#   #", "#### "},
	'E':  {"#####", "#    ", "#    ", "#### ", "#    ", "#    ", "#####"},
	'F':  {"#####", "#    ", "#    ", "#### ", "#    ", "#    ", "#    "},
	'G':  {" ### ", "#   #", "#    ", "# ###", "#   #", "#   #", " ### "},
	'H':  {"#   #", "#   #", "#   #", "#####", "#   #", "#   #", "#   #"},
	'I':  {" ### ", "  #  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### "},
	'J':  {"  ###", "   # ", "   # ", "   # ", "   # ", "#  # ", " ##  "},
	'K':  {"#   #", "#  # ", "# #  ", "##   ", "# #  ", "#  # ", "#   #"},
	'L':  {"#    ", "#    ", "#    ", "#    ", "#    ", "#    ", "#####"},
	'M':  {"#   #", "## ##", "# # #", "# # #", "#   #", "#   #", "#   #"},
	'N':  {"#   #", "##  #", "# # #", "#  ##", "#   #", "#   #", "#   #"},
	'O':  {" ### ", "#   #", "#   #", "#   #", "#   #", "#   #", " ### "},
	'P':  {"#### ", "#   #", "#   #", "#### ", "#    ", "#    ", "#    "},
	'Q':  {" ### ", "#   #", "#   #", "#   #", "# # #", "#  # ", " ## #"},
	'R':  {"#### ", "#   #", "#   #", "#### ", "# #  ", "#  # ", "#   #"},
	'S':  {" ####", "#    ", "#    ", " ### ", "    #", "    #", "#### "},
	'T':  {"#####", "  #  ", "  #  ", "  #  ", "  #  ", "  #  ", "  #  "},
	'U':  {"#   #", "#   #", "#   #", "#   #", "#   #", "#   #", " ### "},
	'V':  {"#   #", "#   #", "#   #", "#   #", "#   #", " # # ", "  #  "},
	'W':  {"#   #", "#   #", "#   #", "# # #", "# # #", "# # #", " # # "},
	'X':  {"#   #", "#   #", " # # ", "  #  ", " # # ", "#   #", "#   #"},
	'Y':  {"#   #", "#   #", " # # ", "  #  ", "  #  ", "  #  ", "  #  "},
	'Z':  {"#####", "    #", "   # ", "  #  ", " #   ", "#    ", "#####"},
	'0':  {" ### ", "#   #", "#  ##", "# # #", "##  #", "#   #", " ### "},
	'1':  {"  #  ", " ##  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### "},
	'2':  {" ### ", "#   #", "    #", "   # ", "  #  ", " #   ", "#####"},
	'3':  {" ### ", "#   #", "    #", "  ## ", "    #", "#   #", " ### "},
	'4':  {"   # ", "  ## ", " # # ", "#  # ", "#####", "   # ", "   # "},
	'5':  {"#####", "#    ", "#### ", "    #", "    #", "#   #", " ### "},
	'6':  {" ### ", "#    ", "#    ", "#### ", "#   #", "#   #", " ### "},
	'7':  {"#####", "    #", "   # ", "  #  ", " #   ", " #   ", " #   "},
	'8':  {" ### ", "#   #", "#   #", " ### ", "#   #", "#   #", " ### "},
	'9':  {" ### ", "#   #", "#   #", " ####", "    #", "    #", " ### "},
	' ':  {"     ", "     ", "     ", "     ", "     ", "     ", "     "},
	'.':  {"     ", "     ", "     ", "     ", "     ", " ##  ", " ##  "},
	',':  {"     ", "     ", "     ", "     ", " ##  ", "  #  ", " #   "},
	':':  {"     ", " ##  ", " ##  ", "     ", " ##  ", " ##  ", "     "},
	';':  {"     ", " ##  ", " ##  ", "     ", " ##  ", "  #  ", " #   "},
	'!':  {"  #  ", "  #  ", "  #  ", "  #  ", "  #  ", "     ", "  #  "},
	'?':  {" ### ", "#   #", "    #", "   # ", "  #  ", "     ", "  #  "},
	'-':  {"     ", "     ", "     ", "#####", "     ", "     ", "     "},
	'+':  {"     ", "  #  ", "  #  ", "#####", "  #  ", "  #  ", "     "},
	'=':  {"     ", "     ", "#####", "     ", "#####", "     ", "     "},
	'_':  {"     ", "     ", "     ", "     ", "     ", "     ", "#####"},
	'/':  {"    #", "    #", "   # ", "  #  ", " #   ", "#    ", "#    "},
	'\\': {"#    ", "#    ", " #   ", "  #  ", "   # ", "    #", "    #"},
	'(':  {"   # ", "  #  ", " #   ", " #   ", " #   ", "  #  ", "   # "},
	')':  {" #   ", "  #  ", "   # ", "   # ", "   # ", "  #  ", " #   "},
	'[':  {" ### ", " #   ", " #   ", " #   ", " #   ", " #   ", " ### "},
	']':  {" ### ", "   # ", "   # ", "   # ", "   # ", "   # ", " ### "},
	'<':  {"   # ", "  #  ", " #   ", "#    ", " #   ", "  #  ", "   # "},
	'>':  {" #   ", "  #  ", "   # ", "    #", "   # ", "  #  ", " #   "},
	'\'': {"  #  ", "  #  ", " #   ", "     ", "     ", "     ", "     "},
	'"':  {" # # ", " # # ", "     ", "     ", "     ", "     ", "     "},
	'*':  {"     ", "# # #", " ### ", "#####", " ### ", "# # #", "     "},
	'%':  {"##  #", "##  #", "   # ", "  #  ", " #   ", "#  ##", "#  ##"},
	'#':  {" # # ", "#####", " # # ", " # # ", " # # ", "#####", " # # "},
	'&':  {" ##  ", "#  # ", "#  # ", " ##  ", "# # #", "#  # ", " ## #"},
	'@':  {" ### ", "#   #", "# ###", "# # #", "# ###", "#    ", " ### "},
	'|':  {"  #  ", "  #  ", "  #  ", "  #  ", "  #  ", "  #  ", "  #  "},
	'$':  {"  #  ", " ####", "# #  ", " ### ", "  # #", "#### ", "  #  "},
	'^':  {"  #  ", " # # ", "#   #", "     ", "     ", "     ", "     "},
	'~':  {"     ", "     ", " #  #", "# # #", "#  # ", "     ", "     "},
}

// unknownGlyph is rendered for runes outside the table (a hollow box).
var unknownGlyph = [GlyphH]string{"#####", "#   #", "#   #", "#   #", "#   #", "#   #", "#####"}

func glyphFor(r rune) [GlyphH]string {
	if r >= 'a' && r <= 'z' {
		r = r - 'a' + 'A'
	}
	if g, ok := glyphs[r]; ok {
		return g
	}
	return unknownGlyph
}

// TextWidth returns the pixel width of s rendered in the built-in font.
func TextWidth(s string) int {
	n := len([]rune(s))
	if n == 0 {
		return 0
	}
	return n*GlyphW + (n-1)*GlyphGap
}

// DrawText renders s at (x, y) (top-left corner) in color c.
func (f *Frame) DrawText(x, y int, s string, c RGB) {
	cx := x
	for _, r := range s {
		g := glyphFor(r)
		for row := 0; row < GlyphH; row++ {
			line := g[row]
			for col := 0; col < GlyphW && col < len(line); col++ {
				if line[col] == '#' {
					f.Set(cx+col, y+row, c)
				}
			}
		}
		cx += GlyphW + GlyphGap
	}
}

// DrawTextClipped renders s at (x, y) but only pixels inside clip.
func (f *Frame) DrawTextClipped(x, y int, s string, c RGB, clip Rect) {
	cx := x
	for _, r := range s {
		g := glyphFor(r)
		for row := 0; row < GlyphH; row++ {
			line := g[row]
			for col := 0; col < GlyphW && col < len(line); col++ {
				if line[col] == '#' && clip.Contains(cx+col, y+row) {
					f.Set(cx+col, y+row, c)
				}
			}
		}
		cx += GlyphW + GlyphGap
	}
}

// FitText truncates s so it fits in width pixels, appending ".." when
// truncation happens.
func FitText(s string, width int) string {
	if TextWidth(s) <= width {
		return s
	}
	rs := []rune(s)
	for len(rs) > 0 && TextWidth(string(rs)+"..") > width {
		rs = rs[:len(rs)-1]
	}
	if len(rs) == 0 {
		return ""
	}
	return string(rs) + ".."
}

// HasGlyph reports whether r has a real glyph (as opposed to the
// fallback box).
func HasGlyph(r rune) bool {
	if r >= 'a' && r <= 'z' {
		r = r - 'a' + 'A'
	}
	_, ok := glyphs[r]
	return ok
}

// SupportedRunes returns the set of runes the font covers, as a sorted
// string (useful in tests and docs).
func SupportedRunes() string {
	var b strings.Builder
	for r := rune(32); r < 127; r++ {
		if HasGlyph(r) {
			b.WriteRune(r)
		}
	}
	return b.String()
}
