package playback

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/media/container"
	"repro/internal/media/raster"
	"repro/internal/media/studio"
	"repro/internal/media/synth"
	"repro/internal/media/vcodec"
)

// testBlob returns a recorded film with per-shot chapters and the film
// itself for ground truth.
func testBlob(t testing.TB) ([]byte, *synth.Film) {
	t.Helper()
	film := synth.Generate(synth.Spec{
		W: 64, H: 48, FPS: 10,
		Shots: 3, MinShotFrames: 10, MaxShotFrames: 14,
		Seed: 31,
	})
	blob, err := studio.Record(film, studio.Options{GOP: 5, ShotMarkers: true})
	if err != nil {
		t.Fatal(err)
	}
	return blob, film
}

func TestFrameAtSequentialAndQuality(t *testing.T) {
	blob, film := testBlob(t)
	v, err := OpenVideo(blob, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < film.FrameCount(); i++ {
		f, err := v.FrameAt(i)
		if err != nil {
			t.Fatal(err)
		}
		if p := raster.PSNR(film.Render(i), f); p < 22 {
			t.Errorf("frame %d PSNR %.1f", i, p)
		}
	}
}

func TestFrameAtRandomAccessMatchesSequential(t *testing.T) {
	blob, _ := testBlob(t)
	vs, _ := OpenVideo(blob, 1)
	vr, _ := OpenVideo(blob, 1)
	n := vs.Meta().FrameCount
	// Sequential decode of everything.
	seq := make([]*raster.Frame, n)
	for i := 0; i < n; i++ {
		f, err := vs.FrameAt(i)
		if err != nil {
			t.Fatal(err)
		}
		seq[i] = f.Clone() // FrameAt recycles its frame; retain a copy
	}
	// Random-order access must give bit-identical frames.
	order := []int{n - 1, 0, n / 2, 3, n / 2, n - 2, 1, n / 3, 0}
	for _, i := range order {
		f, err := vr.FrameAt(i)
		if err != nil {
			t.Fatalf("FrameAt(%d): %v", i, err)
		}
		if !f.Equal(seq[i]) {
			t.Fatalf("random access frame %d differs from sequential decode", i)
		}
	}
}

func TestFrameAtOutOfRange(t *testing.T) {
	blob, _ := testBlob(t)
	v, _ := OpenVideo(blob, 1)
	if _, err := v.FrameAt(-1); err == nil {
		t.Error("FrameAt(-1) accepted")
	}
	if _, err := v.FrameAt(v.Meta().FrameCount); err == nil {
		t.Error("FrameAt(count) accepted")
	}
}

func TestOpenVideoRejectsGarbage(t *testing.T) {
	if _, err := OpenVideo([]byte("not a container"), 1); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCursorSegmentPlayback(t *testing.T) {
	blob, film := testBlob(t)
	v, _ := OpenVideo(blob, 1)
	c := NewCursor(v, HoldLast)
	if _, err := c.Frame(); err == nil {
		t.Error("cursor frame before entering a segment should fail")
	}
	segName := v.Chapters()[1].Name
	if err := c.EnterSegment(segName); err != nil {
		t.Fatal(err)
	}
	want := film.ShotStart(1)
	if c.Pos() != want {
		t.Fatalf("cursor starts at %d, want %d", c.Pos(), want)
	}
	if _, err := c.Frame(); err != nil {
		t.Fatal(err)
	}
	// Advance to the end; HoldLast pins the final frame.
	steps := 0
	for {
		moved, err := c.Advance()
		if err != nil {
			t.Fatal(err)
		}
		if !moved {
			break
		}
		steps++
		if steps > 1000 {
			t.Fatal("cursor never reached segment end")
		}
	}
	if !c.AtEnd() {
		t.Error("cursor should be at end")
	}
	seg := c.Segment()
	if c.Pos() != seg.End-1 {
		t.Errorf("held position %d, want %d", c.Pos(), seg.End-1)
	}
	if steps != seg.End-seg.Start-1 {
		t.Errorf("advanced %d steps, want %d", steps, seg.End-seg.Start-1)
	}
}

func TestCursorLoop(t *testing.T) {
	blob, _ := testBlob(t)
	v, _ := OpenVideo(blob, 1)
	c := NewCursor(v, Loop)
	seg := v.Chapters()[0]
	if err := c.EnterSegment(seg.Name); err != nil {
		t.Fatal(err)
	}
	// March two full laps; position must wrap.
	lapLen := seg.End - seg.Start
	for i := 0; i < 2*lapLen; i++ {
		moved, err := c.Advance()
		if err != nil {
			t.Fatal(err)
		}
		if !moved {
			t.Fatal("loop cursor should always move")
		}
	}
	if c.Pos() != seg.Start {
		t.Errorf("after 2 laps pos = %d, want %d", c.Pos(), seg.Start)
	}
}

func TestCursorSeek(t *testing.T) {
	blob, _ := testBlob(t)
	v, _ := OpenVideo(blob, 1)
	c := NewCursor(v, Loop)
	if err := c.Seek(0); err == nil {
		t.Fatal("seek before entering a segment accepted")
	}
	seg := v.Chapters()[1]
	if err := c.EnterSegment(seg.Name); err != nil {
		t.Fatal(err)
	}
	mid := seg.Start + (seg.End-seg.Start)/2
	if err := c.Seek(mid); err != nil {
		t.Fatal(err)
	}
	if c.Pos() != mid {
		t.Fatalf("pos = %d, want %d", c.Pos(), mid)
	}
	// The sought frame decodes identically to the same frame reached by
	// random access.
	want, err := v.FrameAt(mid)
	if err != nil {
		t.Fatal(err)
	}
	wantClone := want.Clone()
	got, err := c.Frame()
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Pix) != string(wantClone.Pix) {
		t.Fatal("sought frame differs from random-access frame")
	}
	for _, bad := range []int{seg.Start - 1, seg.End, -5} {
		if err := c.Seek(bad); err == nil {
			t.Errorf("seek to %d outside %+v accepted", bad, seg)
		}
	}
}

func TestCursorEnterUnknownSegment(t *testing.T) {
	blob, _ := testBlob(t)
	v, _ := OpenVideo(blob, 1)
	c := NewCursor(v, HoldLast)
	if err := c.EnterSegment("no-such-scenario"); err == nil {
		t.Fatal("unknown segment accepted")
	}
}

func TestCursorEnterRange(t *testing.T) {
	blob, _ := testBlob(t)
	v, _ := OpenVideo(blob, 1)
	c := NewCursor(v, HoldLast)
	if err := c.EnterRange("custom", 5, 12); err != nil {
		t.Fatal(err)
	}
	if c.Pos() != 5 || c.Segment().End != 12 {
		t.Errorf("range cursor state wrong: pos=%d seg=%+v", c.Pos(), c.Segment())
	}
	for _, bad := range [][2]int{{-1, 5}, {5, 5}, {5, 10000}} {
		if err := c.EnterRange("bad", bad[0], bad[1]); err == nil {
			t.Errorf("range %v accepted", bad)
		}
	}
}

func TestPlayDeliversAllFrames(t *testing.T) {
	blob, _ := testBlob(t)
	v, _ := OpenVideo(blob, 1)
	var got []int
	stats, err := Play(context.Background(), v, 3, 17, PlayOptions{Prefetch: 3}, func(i int, f *raster.Frame) error {
		if f == nil || f.W == 0 {
			t.Fatal("nil frame delivered")
		}
		got = append(got, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Frames != 14 || len(got) != 14 {
		t.Fatalf("delivered %d frames, want 14", stats.Frames)
	}
	for k, i := range got {
		if i != 3+k {
			t.Fatalf("frame order broken: got %d at position %d", i, k)
		}
	}
}

func TestPlayCallbackErrorStops(t *testing.T) {
	blob, _ := testBlob(t)
	v, _ := OpenVideo(blob, 1)
	boom := errors.New("presentation failed")
	stats, err := Play(context.Background(), v, 0, 20, PlayOptions{}, func(i int, f *raster.Frame) error {
		if i == 4 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if stats.Frames != 4 {
		t.Errorf("frames before error = %d, want 4", stats.Frames)
	}
}

func TestPlayContextCancel(t *testing.T) {
	blob, _ := testBlob(t)
	v, _ := OpenVideo(blob, 1)
	ctx, cancel := context.WithCancel(context.Background())
	_, err := Play(ctx, v, 0, v.Meta().FrameCount, PlayOptions{}, func(i int, f *raster.Frame) error {
		if i == 2 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestPlayInvalidRange(t *testing.T) {
	blob, _ := testBlob(t)
	v, _ := OpenVideo(blob, 1)
	if _, err := Play(context.Background(), v, -1, 5, PlayOptions{}, nil); err == nil {
		t.Error("negative start accepted")
	}
	if _, err := Play(context.Background(), v, 5, 4, PlayOptions{}, nil); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestPlayRealtimePacing(t *testing.T) {
	blob, _ := testBlob(t)
	v, _ := OpenVideo(blob, 2)
	// 5 frames at 10 fps ≈ 400ms of pacing gaps (first frame immediate).
	start := time.Now()
	stats, err := Play(context.Background(), v, 0, 5, PlayOptions{Realtime: true}, func(i int, f *raster.Frame) error {
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if stats.Frames != 5 {
		t.Fatalf("frames = %d", stats.Frames)
	}
	if elapsed < 300*time.Millisecond {
		t.Errorf("realtime playback of 5 frames @10fps took %v, want >= ~400ms", elapsed)
	}
}

func TestPlayEarlyStopJoinsDecoder(t *testing.T) {
	// Stopping Play from the callback must wait for the decode goroutine;
	// immediate reuse of the Video would otherwise race on the decoder.
	blob, _ := testBlob(t)
	v, err := OpenVideo(blob, 1)
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop after first frame")
	_, err = Play(context.Background(), v, 0, v.Meta().FrameCount, PlayOptions{Prefetch: 3},
		func(i int, f *raster.Frame) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("Play error = %v, want sentinel", err)
	}
	if _, err := v.FrameAt(0); err != nil {
		t.Fatalf("Video unusable after early-stopped Play: %v", err)
	}
}

func TestFrameAtErrorInvalidatesPosition(t *testing.T) {
	// A decode failure mid roll-forward advances the decoder reference past
	// v.pos; the Video must forget its position so the next read re-seeks
	// from a keyframe instead of predicting against the wrong reference.
	film := synth.Generate(synth.Spec{
		W: 64, H: 48, FPS: 10,
		Shots: 2, MinShotFrames: 10, MaxShotFrames: 12,
		NoiseAmp: 6, Seed: 17,
	})
	enc, err := vcodec.NewEncoder(vcodec.Config{Width: 64, Height: 48, QStep: 4, GOP: 100, SearchRange: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	mux, err := container.NewMuxer(container.Meta{Width: 64, Height: 48, FPS: 10, GOP: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		pkt, err := enc.Encode(film.Render(i))
		if err != nil {
			t.Fatal(err)
		}
		if pkt.Index == 5 {
			pkt.Data = []byte("garbage, not a TKV1 packet") // poisoned mid-GOP P-frame
		}
		if err := mux.AddPacket(pkt); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := mux.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	v, err := OpenVideo(blob, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.FrameAt(2); err != nil { // establish v.pos = 3
		t.Fatal(err)
	}
	if _, err := v.FrameAt(7); err == nil { // rolls 3,4 fine, dies at 5
		t.Fatal("decoding across the poisoned packet should fail")
	}
	got, err := v.FrameAt(3)
	if err != nil {
		t.Fatalf("FrameAt(3) after failed roll: %v", err)
	}
	fresh, err := OpenVideo(blob, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.FrameAt(3)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("post-error FrameAt decoded against a stale reference")
	}
}

func TestSeekCostBoundedByGOP(t *testing.T) {
	// Seeking backward should decode at most GOP frames; we can't observe
	// decode count directly, but we can check correctness right after a
	// long forward roll followed by a backward seek.
	blob, film := testBlob(t)
	v, _ := OpenVideo(blob, 1)
	last := film.FrameCount() - 1
	if _, err := v.FrameAt(last); err != nil {
		t.Fatal(err)
	}
	f, err := v.FrameAt(2)
	if err != nil {
		t.Fatal(err)
	}
	if p := raster.PSNR(film.Render(2), f); p < 22 {
		t.Errorf("post-seek frame PSNR %.1f", p)
	}
}
