package core

import (
	"strings"
	"testing"
)

func projectWithQuiz(mutate func(*Quiz)) *Project {
	p := tinyProject()
	q := &Quiz{
		ID:        "q1",
		Question:  "What fits the empty slot?",
		Choices:   []string{"A RAM module", "A sandwich"},
		Answer:    0,
		Knowledge: "ram-identification",
	}
	if mutate != nil {
		mutate(q)
	}
	p.Quizzes = []*Quiz{q}
	return p
}

func TestQuizLookupAndJSON(t *testing.T) {
	p := projectWithQuiz(nil)
	if p.QuizByID("q1") == nil || p.QuizByID("nope") != nil {
		t.Fatal("QuizByID wrong")
	}
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := UnmarshalProject(data)
	if err != nil {
		t.Fatal(err)
	}
	got := q.QuizByID("q1")
	if got == nil || got.Answer != 0 || len(got.Choices) != 2 {
		t.Fatalf("quiz lost in round trip: %+v", got)
	}
}

func TestQuizValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Quiz)
		want   string
	}{
		{"empty question", func(q *Quiz) { q.Question = "" }, "no question"},
		{"one choice", func(q *Quiz) { q.Choices = q.Choices[:1] }, "two choices"},
		{"answer out of range", func(q *Quiz) { q.Answer = 5 }, "out of range"},
		{"negative answer", func(q *Quiz) { q.Answer = -1 }, "out of range"},
		{"bad knowledge", func(q *Quiz) { q.Knowledge = "alchemy" }, "unknown knowledge"},
	}
	for _, c := range cases {
		p := projectWithQuiz(c.mutate)
		probs := p.Validate(nil)
		found := false
		for _, pr := range probs {
			if pr.Severity == Error && strings.Contains(pr.Msg, c.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no error containing %q in %v", c.name, c.want, probs)
		}
	}
	// Clean quiz validates.
	if HasErrors(projectWithQuiz(nil).Validate(nil)) {
		t.Error("valid quiz flagged")
	}
	// Duplicate ids.
	p := projectWithQuiz(nil)
	p.Quizzes = append(p.Quizzes, &Quiz{ID: "q1", Question: "x", Choices: []string{"a", "b"}})
	if !HasErrors(p.Validate(nil)) {
		t.Error("duplicate quiz id accepted")
	}
}

func TestScriptQuizReferenceValidation(t *testing.T) {
	p := projectWithQuiz(nil)
	p.Scenarios[0].Objects[1].Events[0].Script = `quiz "q1";`
	if HasErrors(p.Validate(nil)) {
		t.Error("valid quiz reference flagged")
	}
	p.Scenarios[0].Objects[1].Events[0].Script = `quiz "ghost";`
	probs := p.Validate(nil)
	found := false
	for _, pr := range probs {
		if pr.Severity == Error && strings.Contains(pr.Msg, "unknown quiz") {
			found = true
		}
	}
	if !found {
		t.Errorf("unknown quiz reference not caught: %v", probs)
	}
}

func TestSinkQuiz(t *testing.T) {
	p := projectWithQuiz(nil)
	s := NewState(p)
	sink := NewSink(p, s)
	var asked []string
	sink.OnQuiz = func(id string) { asked = append(asked, id) }
	sink.Quiz("q1")
	sink.Quiz("ghost")
	if len(asked) != 1 || asked[0] != "q1" {
		t.Fatalf("asked = %v", asked)
	}
	if len(sink.Problems) != 1 {
		t.Fatalf("problems = %v", sink.Problems)
	}
}
