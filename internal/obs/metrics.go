// Package obs is the repo's observability core: atomic counters and
// gauges, fixed-bucket histograms whose hot path allocates nothing, a
// process-wide Registry that exposes everything as Prometheus text (or
// JSON), and a lightweight trace context (trace/span/parent ids riding an
// X-Vgbl-Trace header) with a bounded per-node span ring.
//
// The package is dependency-free by design — every service layer
// (playsvc, netstream, blobstore, telemetry, the cluster gateway)
// instruments itself with these primitives and registers them on one
// Registry per node, so `GET /metrics` on any node covers the whole
// process. Instruments are constructed standalone (a component owns its
// histogram whether or not anything scrapes it) and attached to a
// Registry afterwards; counters that already exist as striped atomics
// elsewhere are exported through CounterFunc/GaugeFunc closures instead
// of being migrated, keeping their contention behavior unchanged.
package obs

import (
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Int64 }

// NewCounter returns a zeroed counter.
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the counter to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// NewGauge returns a zeroed gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add shifts the value by n (negative allowed).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// LatencyBounds are the default duration buckets, in nanoseconds: 50ns up
// to 10s, roughly exponential. The low end exists for the chunk store's
// hot tier (tens of ns); the high end covers cold restores and drains.
var LatencyBounds = []int64{
	50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
	1_000_000, 2_500_000, 5_000_000, 10_000_000, 25_000_000, 50_000_000,
	100_000_000, 250_000_000, 500_000_000,
	1_000_000_000, 2_500_000_000, 5_000_000_000, 10_000_000_000,
}

// SizeBounds are the default byte-size buckets (256 B – 64 MiB).
var SizeBounds = []int64{
	256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
	1 << 20, 4 << 20, 16 << 20, 64 << 20,
}

// CountBounds are small-integer buckets (gateway hop counts and the like).
var CountBounds = []int64{0, 1, 2, 3, 4, 6, 8, 16}

// Histogram is a fixed-bucket integer histogram. Observe is wait-free and
// allocation-free: a binary search over the immutable bounds plus two
// atomic adds, so it is safe on paths pinned at 0 allocs/op (the play
// service's frame path, the chunk store's hot tier). Values are whatever
// unit the owner chose — nanoseconds for latency, bytes for sizes; the
// Registry's unit field tells the exporter how to scale them.
type Histogram struct {
	bounds []int64        // upper bounds, ascending; bucket i covers (bounds[i-1], bounds[i]]
	counts []atomic.Int64 // len(bounds)+1; the extra bucket is +Inf
	sum    atomic.Int64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
// The bounds slice is retained and must not be mutated.
func NewHistogram(bounds []int64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBounds
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.sum.Add(v)
}

// ObserveSince records the nanoseconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(int64(time.Since(t0))) }

// Snapshot copies the current bucket counts. Under concurrent writers the
// buckets are each exact but may be mutually skewed by in-flight
// observations; once writers stop, the snapshot is exact.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram, and the shape
// scraped clients (the fleet's percentile table) compute quantiles from.
type HistogramSnapshot struct {
	Bounds []int64 `json:"bounds"` // upper bounds in the owner's unit (ns, bytes, ...)
	Counts []int64 `json:"counts"` // len(Bounds)+1; the last bucket is +Inf
	Sum    int64   `json:"sum"`
	Count  int64   `json:"count"`
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) by linear
// interpolation within the containing bucket — the usual Prometheus
// estimate. Values landing in the +Inf bucket report the largest finite
// bound. An empty histogram reports 0.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lower := int64(0)
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		upper := s.Bounds[i]
		frac := 1 - (cum-rank)/float64(c)
		return lower + int64(frac*float64(upper-lower))
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Merge folds another snapshot with identical bounds into s (per-node
// histograms summed into a cluster view). Mismatched bounds are ignored.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	if len(o.Counts) != len(s.Counts) {
		return
	}
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Sum += o.Sum
	s.Count += o.Count
}

// Label is one metric dimension (e.g. {tier, hot}).
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Sampler admits every n-th call — the cheap gate for timing paths whose
// own cost is tens of nanoseconds (the chunk store's hot tier), where an
// unconditional pair of time.Now calls would dominate the measurement.
// Tick is one atomic add and a mask; it never allocates.
type Sampler struct {
	n    atomic.Int64
	mask int64
}

// NewSampler samples roughly one call in every (rounded up to a power of
// two). every ≤ 1 samples every call.
func NewSampler(every int64) *Sampler {
	m := int64(1)
	for m < every {
		m <<= 1
	}
	return &Sampler{mask: m - 1}
}

// Tick reports whether this call is sampled.
func (s *Sampler) Tick() bool { return s.n.Add(1)&s.mask == 0 }
