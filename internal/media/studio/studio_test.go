package studio

import (
	"strings"
	"testing"

	"repro/internal/media/container"
	"repro/internal/media/raster"
	"repro/internal/media/synth"
	"repro/internal/media/vcodec"
)

func shortFilm() *synth.Film {
	return synth.Generate(synth.Spec{
		W: 64, H: 48, FPS: 8,
		Shots: 3, MinShotFrames: 6, MaxShotFrames: 8,
		Seed: 11,
	})
}

func TestRecordProducesValidContainer(t *testing.T) {
	film := shortFilm()
	blob, err := Record(film, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := container.Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	m := r.Meta()
	if m.FrameCount != film.FrameCount() || m.Width != film.W || m.FPS != film.FPS {
		t.Errorf("meta %+v does not match film", m)
	}
	// Every packet decodes in sequence with sane quality.
	dec := vcodec.NewDecoder(1)
	for i := 0; i < m.FrameCount; i++ {
		data, _, err := r.PacketAt(i)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.Decode(data)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if p := raster.PSNR(film.Render(i), got); p < 22 {
			t.Errorf("frame %d PSNR %.1f too low", i, p)
		}
	}
}

func TestRecordShotMarkers(t *testing.T) {
	film := shortFilm()
	blob, err := Record(film, Options{ShotMarkers: true})
	if err != nil {
		t.Fatal(err)
	}
	r, err := container.Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	chs := r.Chapters()
	if len(chs) != len(film.Shots) {
		t.Fatalf("%d chapters, want %d", len(chs), len(film.Shots))
	}
	for k, ch := range chs {
		if ch.Start != film.ShotStart(k) {
			t.Errorf("chapter %d starts at %d, want %d", k, ch.Start, film.ShotStart(k))
		}
		if !strings.Contains(ch.Name, film.Shots[k].Scene.String()) {
			t.Errorf("chapter name %q missing scene kind", ch.Name)
		}
	}
	// Chapters must tile the film exactly.
	if chs[0].Start != 0 || chs[len(chs)-1].End != film.FrameCount() {
		t.Error("chapters do not span the film")
	}
	for i := 1; i < len(chs); i++ {
		if chs[i].Start != chs[i-1].End {
			t.Errorf("gap between chapters %d and %d", i-1, i)
		}
	}
}

func TestRecordDefaultGOPIsFPS(t *testing.T) {
	film := shortFilm()
	blob, err := Record(film, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := container.Open(blob)
	if r.Meta().GOP != film.FPS {
		t.Errorf("GOP = %d, want fps %d", r.Meta().GOP, film.FPS)
	}
	// Frame 8 (one second in) must be an I-frame.
	_, ft, _ := r.PacketAt(film.FPS)
	if ft != vcodec.IFrame {
		t.Error("GOP boundary is not an I-frame")
	}
}

func TestRecordRejectsBadOptions(t *testing.T) {
	film := shortFilm()
	if _, err := Record(film, Options{QStep: 999}); err == nil {
		t.Error("absurd qstep accepted")
	}
}
