// Command vgbl-play is the IVGBL gaming platform's command-line front end
// (paper §4.3). It plays a .tkg package either interactively (a text REPL
// over the same session the GUI window drives), with a simulated learner
// bot, or just prints the runtime interface (Figure 2).
//
// Usage:
//
//	vgbl-play -demo street -snapshot
//	vgbl-play -pkg game.tkg               # interactive REPL on stdin
//	vgbl-play -pkg game.tkg -bot guided   # simulated learner + report
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/analytics"
	"repro/internal/content"
	"repro/internal/media/studio"
	"repro/internal/runtime"
	"repro/internal/sim"
)

func main() {
	pkgPath := flag.String("pkg", "", "play this .tkg package")
	demo := flag.String("demo", "", "play a bundled demo: classroom, museum or street")
	bot := flag.String("bot", "", "run a simulated learner: guided, explorer or random")
	steps := flag.Int("steps", 120, "bot step budget")
	seed := flag.Int64("seed", 1, "bot seed")
	snapshot := flag.Bool("snapshot", false, "print the runtime interface as ASCII (Figure 2) and exit")
	flag.Parse()

	blob, err := loadPackage(*pkgPath, *demo)
	if err != nil {
		fail(err)
	}
	if *bot != "" {
		runBot(blob, *bot, *steps, *seed)
		return
	}
	col := &analytics.Collector{}
	s, err := runtime.NewSession(blob, runtime.Options{Observer: col})
	if err != nil {
		fail(err)
	}
	g := runtime.NewGameWindow(s)
	if *snapshot {
		fmt.Println(g.Snapshot(132, 44))
		return
	}
	repl(g, col)
}

func loadPackage(pkgPath, demo string) ([]byte, error) {
	if pkgPath != "" {
		return os.ReadFile(pkgPath)
	}
	var course *content.Course
	switch demo {
	case "classroom":
		course = content.Classroom()
	case "museum":
		course = content.Museum()
	case "street", "":
		course = content.StreetDemo()
	default:
		return nil, fmt.Errorf("unknown demo %q", demo)
	}
	return course.BuildPackage(studio.Options{QStep: 8})
}

func runBot(blob []byte, name string, steps int, seed int64) {
	var f sim.Factory
	switch name {
	case "guided":
		f = sim.GuidedFactory
	case "explorer":
		f = sim.ExplorerFactory
	case "random":
		f = sim.RandomFactory
	default:
		fail(fmt.Errorf("unknown bot %q", name))
	}
	res, err := sim.Run(blob, f, sim.Config{MaxSteps: steps, Patience: 15, RewardBoost: 10, Seed: seed})
	if err != nil {
		fail(err)
	}
	fmt.Printf("bot %s finished: steps=%d completed=%v reason=%s\n\n",
		name, res.Steps, res.Completed, res.QuitReason)
	fmt.Println(res.Report)
}

func repl(g *runtime.GameWindow, col *analytics.Collector) {
	s := g.S
	fmt.Println("IVGBL player — commands: look, click X Y, examine ID, take ID,")
	fmt.Println("talk ID, use ITEM ID, answer N, inv, tick [N], snap, report,")
	fmt.Println("save F, load F, quit")
	fmt.Println()
	fmt.Println(g.Describe())
	sc := bufio.NewScanner(os.Stdin)
	printed := 0 // messages already echoed
	for _, m := range s.Messages() {
		fmt.Println(">>", m)
		printed++
	}
	for {
		fmt.Printf("\n[%s]> ", s.State().Scenario)
		if !sc.Scan() {
			break
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "exit":
			return
		case "look":
			fmt.Println(g.Describe())
		case "click":
			if len(fields) == 3 {
				x, _ := strconv.Atoi(fields[1])
				y, _ := strconv.Atoi(fields[2])
				s.Click(x, y)
			} else {
				fmt.Println("usage: click X Y")
			}
		case "examine":
			if len(fields) == 2 {
				s.Examine(fields[1])
			}
		case "take":
			if len(fields) == 2 {
				s.Take(fields[1])
			}
		case "talk":
			if len(fields) == 2 {
				s.Talk(fields[1])
			}
		case "use":
			if len(fields) >= 3 {
				item := strings.Join(fields[1:len(fields)-1], " ")
				s.UseItemOn(item, fields[len(fields)-1])
			} else {
				fmt.Println("usage: use ITEM OBJECT")
			}
		case "answer":
			if quiz, ok := s.PendingQuiz(); ok && len(fields) == 2 {
				n, _ := strconv.Atoi(fields[1])
				if _, err := s.AnswerQuiz(quiz.ID, n-1); err != nil {
					fmt.Println("answer:", err)
				}
			} else {
				fmt.Println("no quiz pending (or usage: answer N)")
			}
		case "inv":
			fmt.Println("inventory:", strings.Join(s.State().Inventory, ", "))
		case "tick":
			n := 1
			if len(fields) == 2 {
				n, _ = strconv.Atoi(fields[1])
			}
			for i := 0; i < n; i++ {
				if err := s.Tick(); err != nil {
					fmt.Println("tick:", err)
					break
				}
			}
		case "snap":
			g.Refresh()
			fmt.Println(g.Snapshot(132, 44))
		case "report":
			fmt.Println(col.Digest(s.Project().StartScenario))
		case "save":
			if len(fields) == 2 {
				data, err := s.SaveState()
				if err == nil {
					err = os.WriteFile(fields[1], data, 0o644)
				}
				if err != nil {
					fmt.Println("save:", err)
				}
			}
		case "load":
			if len(fields) == 2 {
				data, err := os.ReadFile(fields[1])
				if err == nil {
					err = s.RestoreState(data)
				}
				if err != nil {
					fmt.Println("load:", err)
				}
			}
		default:
			fmt.Println("unknown command", fields[0])
		}
		msgs := s.Messages()
		for _, m := range msgs[printed:] {
			fmt.Println(">>", m)
		}
		printed = len(msgs)
		if kind, contentStr, ok := s.NextPopup(); ok {
			fmt.Printf("** POPUP (%s): %s **\n", kind, contentStr)
		}
		if quiz, ok := s.PendingQuiz(); ok {
			fmt.Printf("** QUIZ: %s\n", quiz.Question)
			for i, c := range quiz.Choices {
				fmt.Printf("     %d) %s\n", i+1, c)
			}
			fmt.Println("   (reply with: answer N)")
		}
		if s.Ended() {
			// Let pending assessment quizzes be answered before wrapping up.
			if _, ok := s.PendingQuiz(); !ok {
				fmt.Printf("GAME OVER: %s\n", s.Outcome())
				fmt.Println(col.Digest(s.Project().StartScenario))
				return
			}
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "vgbl-play:", err)
	os.Exit(1)
}
