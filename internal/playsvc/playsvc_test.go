package playsvc

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/blobstore"
	"repro/internal/content"
	"repro/internal/gamepack"
	"repro/internal/media/raster"
	"repro/internal/media/studio"
	"repro/internal/netstream"
	"repro/internal/runtime"
	"repro/internal/sim"
)

var (
	onceBlob sync.Once
	blob     []byte
	blobErr  error
)

func classroomBlob(t testing.TB) []byte {
	t.Helper()
	onceBlob.Do(func() {
		blob, blobErr = content.Classroom().BuildPackage(studio.Options{QStep: 10, Workers: 2})
	})
	if blobErr != nil {
		t.Fatal(blobErr)
	}
	return blob
}

// liveService mounts a play service on a netstream server — the deployment
// shape vgbl-server uses.
func liveService(t testing.TB, o Options) (*httptest.Server, *Manager) {
	t.Helper()
	m := NewManager(o)
	t.Cleanup(m.Close)
	if err := m.AddCourse("classroom", classroomBlob(t)); err != nil {
		t.Fatal(err)
	}
	srv := netstream.NewServer()
	if err := srv.AddPackage("classroom", classroomBlob(t)); err != nil {
		t.Fatal(err)
	}
	if err := srv.Mount("/play/", m.Handler()); err != nil {
		t.Fatal(err)
	}
	if err := srv.Mount("/room/", m.Handler()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, m
}

func dial(t testing.TB, ts *httptest.Server, obs runtime.Observer) *Client {
	t.Helper()
	c, err := Dial(ClientOptions{
		BaseURL:  ts.URL,
		Course:   "classroom",
		Project:  content.Classroom().Project,
		Observer: obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// recorder captures an event log for equality comparisons.
type recorder struct {
	mu     sync.Mutex
	events []runtime.Event
}

func (r *recorder) Record(e runtime.Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

func (r *recorder) log() []runtime.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]runtime.Event(nil), r.events...)
}

// TestRemotePlayThroughProtocol drives the classroom mission entirely over
// the wire: dialogue, taking, scenario switches, item use and quizzes all
// happen in the hosted session, and the client mirror tracks it.
func TestRemotePlayThroughProtocol(t *testing.T) {
	ts, m := liveService(t, Options{Shards: 4})
	var rec recorder
	c := dial(t, ts, &rec)

	if w, h, fps := c.VideoMeta(); w != 160 || h != 120 || fps != 10 {
		t.Fatalf("video meta = %dx%d@%d", w, h, fps)
	}
	if c.Scenario() == nil || c.Scenario().ID != "classroom" {
		t.Fatalf("scenario = %+v", c.Scenario())
	}
	// The OnEnter briefing arrived with the create reply.
	if len(c.Messages()) == 0 {
		t.Fatal("no OnEnter messages mirrored")
	}

	// Walk the mission by hand.
	c.Examine("computer") // learn + quiz q-diagnosis
	if q, ok := c.PendingQuiz(); !ok || q.ID != "q-diagnosis" {
		t.Fatalf("pending quiz = %v %v", q, ok)
	}
	if correct, err := c.AnswerQuiz("q-diagnosis", 1); err != nil || !correct {
		t.Fatalf("diagnosis answer: correct=%v err=%v", correct, err)
	}
	if !c.Take("desk-coin") {
		t.Fatal("could not take the coin")
	}
	if !c.State().HasItem("coin") {
		t.Fatal("coin not mirrored into inventory")
	}
	if err := c.GotoScenario("market"); err != nil {
		t.Fatal(err)
	}
	if !c.Take("stall-ram") {
		t.Fatal("could not buy the module")
	}
	if _, err := c.AnswerQuiz("q-shopping", 0); err != nil {
		t.Fatal(err)
	}
	if err := c.GotoScenario("classroom"); err != nil {
		t.Fatal(err)
	}
	c.UseItemOn("ram module", "computer")
	if _, err := c.AnswerQuiz("q-install", 0); err != nil {
		t.Fatal(err)
	}
	if !c.Ended() || c.Outcome() != "victory" {
		t.Fatalf("ended=%v outcome=%q", c.Ended(), c.Outcome())
	}
	if err := c.Advance(3); err != nil {
		t.Fatal(err)
	}

	// The frame endpoint serves the composited presentation frame.
	f, err := c.Frame()
	if err != nil {
		t.Fatal(err)
	}
	if f.W != 160 || f.H != 120 || len(f.Pix) != 3*160*120 {
		t.Fatalf("frame = %dx%d (%d bytes)", f.W, f.H, len(f.Pix))
	}

	// Answering a non-pending quiz is a 400, not a session failure.
	if _, err := c.AnswerQuiz("q-diagnosis", 0); err == nil {
		t.Fatal("re-answering an answered quiz succeeded")
	}
	if c.Err() != nil {
		t.Fatalf("bad request stuck: %v", c.Err())
	}

	// Leaving releases the hosted session; the stats agree.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	st := m.Snapshot()
	if st.SessionsCreated != 1 || st.SessionsClosed != 1 || st.SessionsLive != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Acts == 0 || st.Frames != 1 {
		t.Fatalf("acts=%d frames=%d", st.Acts, st.Frames)
	}
	// Every event the server emitted reached the client observer.
	if len(rec.log()) == 0 {
		t.Fatal("no events forwarded")
	}

	// Acting on the released session is a 404.
	if err := c.Advance(1); err == nil {
		t.Fatal("act on a left session succeeded")
	}
}

// TestGoldenReplay is the determinism pin: a seeded sim run records its
// action trace; replaying that trace through a fresh local session AND
// through a play-service client must reproduce the original event log,
// transcript and final state exactly.
func TestGoldenReplay(t *testing.T) {
	pkg := classroomBlob(t)

	var golden recorder
	res, err := sim.Run(pkg, sim.GuidedFactory, sim.Config{
		MaxSteps: 40, Patience: 15, Seed: 7, RecordTrace: true, Observer: &golden,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != res.Steps {
		t.Fatalf("trace has %d steps, run took %d", len(res.Trace), res.Steps)
	}
	if !res.Completed {
		t.Fatalf("guided seed run did not complete: %+v", res)
	}
	wantLog := golden.log()

	// A trace survives serialization (it is a wire-shippable artifact).
	traceJSON, err := json.Marshal(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	var trace []sim.TraceStep
	if err := json.Unmarshal(traceJSON, &trace); err != nil {
		t.Fatal(err)
	}

	// Leg 1: replay through a fresh local session.
	var localRec recorder
	local, err := runtime.NewSession(pkg, runtime.Options{Observer: &localRec})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	if err := sim.Replay(local, trace); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(localRec.log(), wantLog) {
		t.Fatalf("local replay event log diverged:\n got %v\nwant %v", localRec.log(), wantLog)
	}

	// Leg 2: replay through the play service.
	ts, _ := liveService(t, Options{Shards: 4})
	var remoteRec recorder
	remote := dial(t, ts, &remoteRec)
	if err := sim.Replay(remote, trace); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(remoteRec.log(), wantLog) {
		t.Fatalf("remote replay event log diverged:\n got %v\nwant %v", remoteRec.log(), wantLog)
	}

	// Final states and transcripts agree across all three runs.
	localState, err := local.State().Save()
	if err != nil {
		t.Fatal(err)
	}
	remoteState, err := remote.State().Save()
	if err != nil {
		t.Fatal(err)
	}
	if string(localState) != string(remoteState) {
		t.Fatalf("final states diverge:\nlocal  %s\nremote %s", localState, remoteState)
	}
	if !reflect.DeepEqual(local.Messages(), remote.Messages()) {
		t.Fatalf("transcripts diverge:\nlocal  %q\nremote %q", local.Messages(), remote.Messages())
	}
	if !remote.Ended() || remote.Outcome() != "victory" {
		t.Fatalf("remote replay ended=%v outcome=%q", remote.Ended(), remote.Outcome())
	}
}

// TestRemoteGuidedRunMatchesLocal runs the same seeded policy locally and
// remotely; steps, completion and the digested reports must agree.
func TestRemoteGuidedRunMatchesLocal(t *testing.T) {
	cfg := sim.Config{MaxSteps: 40, Patience: 15, Seed: 3}
	localRes, err := sim.Run(classroomBlob(t), sim.GuidedFactory, cfg)
	if err != nil {
		t.Fatal(err)
	}

	ts, _ := liveService(t, Options{})
	col := &analytics.Collector{}
	c, err := Dial(ClientOptions{
		BaseURL: ts.URL, Course: "classroom",
		Project: content.Classroom().Project, Observer: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	remoteRes, err := sim.RunGame(c, sim.GuidedFactory, cfg, col)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if localRes.Steps != remoteRes.Steps || localRes.Completed != remoteRes.Completed ||
		localRes.QuitReason != remoteRes.QuitReason {
		t.Fatalf("runs diverged: local %+v, remote %+v", localRes, remoteRes)
	}
	if localRes.Report.String() != remoteRes.Report.String() {
		t.Fatalf("reports diverge:\nlocal\n%s\nremote\n%s", localRes.Report, remoteRes.Report)
	}
}

// TestEvictionTTL exercises the janitor path directly: idle sessions are
// reclaimed, counted, and gone from the protocol.
func TestEvictionTTL(t *testing.T) {
	ts, m := liveService(t, Options{Shards: 2, TTL: -1})
	c1 := dial(t, ts, nil)
	c2 := dial(t, ts, nil)
	c1.Advance(1)
	c2.Advance(1)

	if n := m.ExpireIdle(time.Now().Add(-time.Minute)); n != 0 {
		t.Fatalf("expired %d fresh sessions", n)
	}
	if n := m.ExpireIdle(time.Now().Add(time.Minute)); n != 2 {
		t.Fatalf("expired %d of 2 idle sessions", n)
	}
	st := m.Snapshot()
	if st.SessionsEvicted != 2 || st.SessionsLive != 0 || st.SessionsCreated != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if err := c1.Advance(1); err == nil {
		t.Fatal("evicted session still answers acts")
	}
	if pe, ok := c1.Err().(*Error); !ok || pe.Status != http.StatusNotFound {
		t.Fatalf("eviction error = %v", c1.Err())
	}
}

// TestCreateErrors covers the create-side protocol errors.
func TestCreateErrors(t *testing.T) {
	ts, m := liveService(t, Options{MaxSessions: 1, TTL: -1})
	if _, err := Dial(ClientOptions{BaseURL: ts.URL, Course: "nope", Project: content.Classroom().Project}); err == nil {
		t.Fatal("unknown course accepted")
	}
	c := dial(t, ts, nil)
	if _, err := Dial(ClientOptions{BaseURL: ts.URL, Course: "classroom", Project: content.Classroom().Project}); err == nil {
		t.Fatal("session cap not enforced")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if m.Live() != 0 {
		t.Fatalf("live = %d", m.Live())
	}
	if err := m.AddCourse("", nil); err == nil {
		t.Fatal("empty course name accepted")
	}
	if err := m.AddCourse("bad", []byte("not a package")); err == nil {
		t.Fatal("garbage package accepted")
	}
}

// TestFramePathZeroAlloc pins the acceptance criterion: once warmed, the
// advance+render frame path allocates nothing per request.
func TestFramePathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is skewed under -race")
	}
	m := NewManager(Options{Shards: 1, TTL: -1})
	defer m.Close()
	if err := m.AddCourse("classroom", classroomBlob(t)); err != nil {
		t.Fatal(err)
	}
	r, err := m.Create(&CreateRequest{Course: "classroom"})
	if err != nil {
		t.Fatal(err)
	}
	noop := func(f *raster.Frame, tick int) error { return nil }
	// Warm sprite cache, frame buffer and decoder recycling (one full loop
	// of the segment so the wrap-around seek path is warm too).
	for i := 0; i < 50; i++ {
		if err := m.WithFrame(r.Session, 1, noop); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := m.WithFrame(r.Session, 1, noop); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("frame path allocates %.1f per request, want 0", allocs)
	}
}

// TestShardStriping creates many sessions and checks they spread across
// shards and that per-shard counters sum to the totals.
func TestShardStriping(t *testing.T) {
	ts, m := liveService(t, Options{Shards: 8, TTL: -1})
	const n = 32
	clients := make([]*Client, n)
	for i := range clients {
		clients[i] = dial(t, ts, nil)
		clients[i].Advance(1)
	}
	st := m.Snapshot()
	if st.SessionsCreated != n || st.SessionsLive != n {
		t.Fatalf("stats = %+v", st)
	}
	populated := 0
	var sumCreated, sumActs int64
	for _, ss := range st.Shards {
		if ss.Live > 0 {
			populated++
		}
		sumCreated += ss.Created
		sumActs += ss.Acts
	}
	if populated < 2 {
		t.Fatalf("all %d sessions landed on %d shard(s)", n, populated)
	}
	if sumCreated != st.SessionsCreated || sumActs != st.Acts {
		t.Fatalf("shard sums diverge from totals: %+v", st)
	}
	for _, c := range clients {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if m.Live() != 0 {
		t.Fatalf("live = %d after closing all", m.Live())
	}
}

// TestEventLogTrimming pins the ack-and-release side of the protocol: the
// server retains only the event tail the client has not yet acknowledged,
// and a retried request with a stale seen-count still gets the retained
// tail instead of an error.
func TestEventLogTrimming(t *testing.T) {
	m := NewManager(Options{Shards: 1, TTL: -1})
	defer m.Close()
	if err := m.AddCourse("classroom", classroomBlob(t)); err != nil {
		t.Fatal(err)
	}
	r, err := m.Create(&CreateRequest{Course: "classroom"})
	if err != nil {
		t.Fatal(err)
	}
	seen := r.EventCount
	var lastTail int
	for i := 0; i < 6; i++ {
		rr, err := m.Act(&ActRequest{Session: r.Session, Kind: ActTalk, Object: "teacher", SeenEvents: seen})
		if err != nil {
			t.Fatal(err)
		}
		seen = rr.EventCount
		lastTail = len(rr.Events)
	}
	h, _, err := m.lookup(r.Session)
	if err != nil {
		t.Fatal(err)
	}
	h.mu.Lock()
	retained, base := len(h.events), h.eventBase
	h.mu.Unlock()
	if base+retained != seen {
		t.Fatalf("retained window [%d,%d) disagrees with total %d", base, base+retained, seen)
	}
	if retained != lastTail {
		t.Fatalf("server retains %d events, want only the last unacked tail (%d)", retained, lastTail)
	}
	// A stale retry (seen-count lower than the trimmed base) is served the
	// retained tail, not an error, and EventCount stays absolute.
	rr, err := m.StateOf(r.Session, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rr.EventCount != seen || len(rr.Events) != retained {
		t.Fatalf("stale read: count %d tail %d, want %d/%d", rr.EventCount, len(rr.Events), seen, retained)
	}
}

// TestCreateCapUnderConcurrency hammers a cap-1 manager with parallel
// creates: the atomic slot reservation must never let the live count
// overshoot MaxSessions.
func TestCreateCapUnderConcurrency(t *testing.T) {
	m := NewManager(Options{Shards: 4, TTL: -1, MaxSessions: 8})
	defer m.Close()
	if err := m.AddCourse("classroom", classroomBlob(t)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var created atomic.Int64
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := m.Create(&CreateRequest{Course: "classroom"}); err == nil {
				created.Add(1)
			}
		}()
	}
	wg.Wait()
	if created.Load() != 8 || m.Live() != 8 {
		t.Fatalf("created %d live %d, cap is 8", created.Load(), m.Live())
	}
	if m.Snapshot().SessionsLive != 8 {
		t.Fatalf("snapshot live = %d", m.Snapshot().SessionsLive)
	}
}

// TestPackageSharing pins that hosted sessions share one parsed package:
// the course is opened once, not per create.
func TestPackageSharing(t *testing.T) {
	m := NewManager(Options{Shards: 1, TTL: -1})
	defer m.Close()
	if err := m.AddCourse("classroom", classroomBlob(t)); err != nil {
		t.Fatal(err)
	}
	r1, err := m.Create(&CreateRequest{Course: "classroom"})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m.Create(&CreateRequest{Course: "classroom"})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Session == r2.Session {
		t.Fatalf("duplicate session id %q", r1.Session)
	}
	h1, _, err := m.lookup(r1.Session)
	if err != nil {
		t.Fatal(err)
	}
	h2, _, err := m.lookup(r2.Session)
	if err != nil {
		t.Fatal(err)
	}
	if h1.course.pkg != h2.course.pkg {
		t.Fatal("sessions do not share the parsed package")
	}
	if h1.sess.Project() != h2.sess.Project() {
		t.Fatal("sessions do not share the project document")
	}
}

// --- chunk store hosting (PR 4) --------------------------------------------

// TestCoursesShareVideo: N courses over the same footage hold one video
// buffer — the "pay for the bytes once" property of the chunk-store
// refactor.
func TestCoursesShareVideo(t *testing.T) {
	m := NewManager(Options{Shards: 2, TTL: -1})
	defer m.Close()
	if err := m.AddCourse("classroom", classroomBlob(t)); err != nil {
		t.Fatal(err)
	}
	// A second course: same footage, different project document.
	other := content.Classroom()
	other.Project.Title = "Remedial Repair"
	video, err := other.RecordVideo(studio.Options{QStep: 10, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	blob2, err := gamepack.Build(other.Project, video)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddCourse("remedial", blob2); err != nil {
		t.Fatal(err)
	}
	st := m.Snapshot()
	if len(st.Courses) != 2 {
		t.Fatalf("courses = %v", st.Courses)
	}
	if st.VideoBuffers != 1 {
		t.Errorf("video buffers = %d, want 1 (shared footage)", st.VideoBuffers)
	}
	// Both courses still play.
	for _, course := range []string{"classroom", "remedial"} {
		r, err := m.Create(&CreateRequest{Course: course})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Act(&ActRequest{Session: r.Session, Kind: ActLeave}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAddCourseFromManifest hosts a course straight out of the chunk
// store: the package blob exists only on the publisher's side.
func TestAddCourseFromManifest(t *testing.T) {
	store, err := blobstore.New(blobstore.Options{Backend: blobstore.NewMemory()})
	if err != nil {
		t.Fatal(err)
	}
	// Deposit the package's chunks the way any publisher would: via a
	// netstream server sharing the store.
	srv := netstream.NewServerWith(store)
	if err := srv.AddPackage("classroom", classroomBlob(t)); err != nil {
		t.Fatal(err)
	}
	man, err := gamepack.ExtractManifest(classroomBlob(t))
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(Options{Shards: 2, TTL: -1, Store: store})
	defer m.Close()
	if err := m.AddCourseFromManifest("classroom", man); err != nil {
		t.Fatal(err)
	}
	r, err := m.Create(&CreateRequest{Course: "classroom"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Width != 160 || r.Height != 120 {
		t.Errorf("video meta = %dx%d", r.Width, r.Height)
	}
	var frame raster.Frame
	if err := m.WithFrame(r.Session, 1, func(f *raster.Frame, tick int) error {
		frame.CopyFrom(f)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if frame.W != 160 || frame.H != 120 {
		t.Errorf("frame = %dx%d", frame.W, frame.H)
	}
	// A manager without a store rejects manifest-backed courses.
	bare := NewManager(Options{Shards: 1, TTL: -1})
	defer bare.Close()
	if err := bare.AddCourseFromManifest("classroom", man); err == nil {
		t.Error("store-less manager accepted a manifest course")
	}
}

// TestCourseReplaceReleasesVideo: re-publishing a course with new footage
// must drop the old video buffer instead of pinning a generation per edit.
func TestCourseReplaceReleasesVideo(t *testing.T) {
	m := NewManager(Options{Shards: 2, TTL: -1})
	defer m.Close()
	if err := m.AddCourse("classroom", classroomBlob(t)); err != nil {
		t.Fatal(err)
	}
	edited := content.Classroom()
	edited.Film.Shots[1].Seed ^= 0xbeef
	blob2, err := edited.BuildPackage(studio.Options{QStep: 10, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddCourse("classroom", blob2); err != nil {
		t.Fatal(err)
	}
	st := m.Snapshot()
	if st.VideoBuffers != 1 {
		t.Errorf("video buffers = %d after replace, want 1", st.VideoBuffers)
	}
	r, err := m.Create(&CreateRequest{Course: "classroom"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Act(&ActRequest{Session: r.Session, Kind: ActLeave}); err != nil {
		t.Fatal(err)
	}
}
