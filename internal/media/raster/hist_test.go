package raster

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramNormalized(t *testing.T) {
	f := New(16, 16)
	f.FillVGradient(Red, Blue)
	h := f.Histogram()
	var sum float64
	for _, v := range h {
		if v < 0 {
			t.Fatal("negative histogram cell")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("histogram sums to %f, want 1", sum)
	}
}

func TestHistogramUniformFrameSingleCell(t *testing.T) {
	f := New(8, 8)
	f.Fill(RGB{10, 10, 10}) // all channels land in bin 0
	h := f.Histogram()
	if h[0] != 1 {
		t.Fatalf("cell 0 = %f, want 1", h[0])
	}
}

func TestChiSquareIdentity(t *testing.T) {
	f := New(12, 12)
	f.FillVGradient(Green, Magenta)
	h := f.Histogram()
	if d := h.ChiSquare(h); d != 0 {
		t.Fatalf("self distance = %f, want 0", d)
	}
}

func TestChiSquareSeparatesScenes(t *testing.T) {
	a := New(16, 16)
	a.Fill(RGB{20, 20, 20})
	b := New(16, 16)
	b.Fill(RGB{240, 240, 240})
	// Same scene with small noise:
	a2 := a.Clone()
	a2.Set(0, 0, RGB{25, 25, 25})
	ha, hb, ha2 := a.Histogram(), b.Histogram(), a2.Histogram()
	if ha.ChiSquare(hb) <= ha.ChiSquare(ha2) {
		t.Fatal("scene change must have larger histogram distance than noise")
	}
	if ha.ChiSquare(hb) < 1.5 {
		t.Errorf("disjoint scenes χ² = %f, want near 2", ha.ChiSquare(hb))
	}
}

func TestChiSquareSymmetric(t *testing.T) {
	err := quick.Check(func(seedA, seedB uint8) bool {
		a := New(8, 8)
		a.Fill(RGB{seedA, seedA / 2, seedA / 3})
		b := New(8, 8)
		b.Fill(RGB{seedB / 3, seedB, seedB / 2})
		ha, hb := a.Histogram(), b.Histogram()
		return math.Abs(ha.ChiSquare(hb)-hb.ChiSquare(ha)) < 1e-12
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestL1Range(t *testing.T) {
	a := New(8, 8)
	a.Fill(Black)
	b := New(8, 8)
	b.Fill(White)
	ha, hb := a.Histogram(), b.Histogram()
	if d := ha.L1(hb); math.Abs(d-2) > 1e-9 {
		t.Errorf("disjoint L1 = %f, want 2", d)
	}
	if d := ha.L1(ha); d != 0 {
		t.Errorf("self L1 = %f, want 0", d)
	}
}

func TestMADAndMSE(t *testing.T) {
	a := New(4, 4)
	b := New(4, 4)
	if MAD(a, b) != 0 || MSE(a, b) != 0 {
		t.Fatal("identical frames must have zero error")
	}
	b.Fill(RGB{10, 10, 10})
	if got := MAD(a, b); got != 10 {
		t.Errorf("MAD = %f, want 10", got)
	}
	if got := MSE(a, b); got != 100 {
		t.Errorf("MSE = %f, want 100", got)
	}
}

func TestMADPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MAD should panic on size mismatch")
		}
	}()
	MAD(New(2, 2), New(3, 3))
}

func TestPSNRMonotoneInNoise(t *testing.T) {
	ref := New(16, 16)
	ref.FillVGradient(Black, White)
	prev := math.Inf(1)
	for _, noise := range []uint8{1, 4, 16, 64} {
		rec := ref.Clone()
		for i := range rec.Pix {
			rec.Pix[i] += noise % (rec.Pix[i] ^ 0xFF | 1) % noise // deterministic pseudo-noise
		}
		// Simpler: add constant offset
		rec2 := ref.Clone()
		for i := range rec2.Pix {
			v := int(rec2.Pix[i]) + int(noise)
			if v > 255 {
				v = 255
			}
			rec2.Pix[i] = uint8(v)
		}
		p := PSNR(ref, rec2)
		if p >= prev {
			t.Fatalf("PSNR not decreasing with noise %d: %f >= %f", noise, p, prev)
		}
		prev = p
	}
}

func TestMeanLuma(t *testing.T) {
	f := New(8, 8)
	if f.MeanLuma() != 0 {
		t.Error("black frame luma should be 0")
	}
	f.Fill(White)
	if l := f.MeanLuma(); l < 250 {
		t.Errorf("white frame luma = %f, want ~255", l)
	}
}
