// Snapshot/restore: a durable, versioned binary encoding of everything a
// Session needs to resume exactly where it stopped — scenario and video
// cursor, inventory/flag/quiz state, NPC conversation positions, the say
// transcript, queued popups, opened resources and the tick clock. The
// encoding is deterministic (identical logical states produce identical
// bytes), so a content-addressed store deduplicates unchanged checkpoints
// for free, and self-describing (tagged records guarded by a checksum), so
// a newer writer can add fields without stranding older snapshots.
//
// The equivalence contract is the golden-replay one: run a trace halfway,
// Snapshot, restore on a fresh session (or another process), finish the
// trace — event logs, transcript and final state must be bit-identical to
// the uninterrupted run. The play service persists these bytes through the
// chunk store so hosted sessions survive eviction, deploys and node churn.
package runtime

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/core"
	"repro/internal/gamepack"
)

// ErrBadSnapshot is wrapped by every snapshot rejection: truncated,
// corrupted, version-skewed or semantically invalid (unknown scenario,
// cursor outside its segment, pending quiz the course does not define).
// Restoration is all-or-nothing — a rejected snapshot never yields a
// partially-restored session.
var ErrBadSnapshot = errors.New("runtime: bad snapshot")

// Snapshot wire format: magic, format version, tagged records, CRC32.
const (
	snapMagic   = "VSNP"
	snapVersion = 1

	// Record tags. A record is (uvarint tag, uvarint length, payload).
	// Unknown tags are skipped on decode so version-1 readers tolerate
	// additive extensions; required tags missing is a rejection.
	tagVideoSum = 1  // sha256 of the package video (binds snapshot to footage)
	tagState    = 2  // core.State as canonical JSON
	tagTick     = 3  // uvarint tick clock
	tagSelected = 4  // inventory item armed for use
	tagNPCPos   = 5  // JSON map[string]int dialogue positions
	tagMessages = 6  // JSON []string say transcript
	tagPopups   = 7  // JSON [][2]string queued popups
	tagOpened   = 8  // JSON []string opened web resources
	tagQuizzes  = 9  // JSON []string pending quiz ids, FIFO
	tagSegment  = 10 // cursor segment (chapter name)
	tagCursor   = 11 // uvarint absolute frame index within the segment

	// maxSnapshotField bounds any single decoded field so a corrupt length
	// cannot ask for gigabytes before validation has a chance to reject.
	maxSnapshotField = 64 << 20
)

func appendRecord(b []byte, tag uint64, payload []byte) []byte {
	b = binary.AppendUvarint(b, tag)
	b = binary.AppendUvarint(b, uint64(len(payload)))
	return append(b, payload...)
}

func appendUintRecord(b []byte, tag uint64, v uint64) []byte {
	return appendRecord(b, tag, binary.AppendUvarint(nil, v))
}

// mustJSON marshals snapshot fields, all of which are plain slices and
// maps of strings/ints that cannot fail to encode. encoding/json sorts map
// keys, which is what makes the snapshot bytes deterministic.
func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic("runtime: snapshot field marshal: " + err.Error())
	}
	return b
}

// Snapshot serializes the session's complete resumable state. The caller
// must not be inside an event script (every public session method returns
// before Snapshot can run, so this only concerns future internal callers).
func (s *Session) Snapshot() []byte {
	b := make([]byte, 0, 512)
	b = append(b, snapMagic...)
	b = binary.AppendUvarint(b, snapVersion)
	sum := sha256.Sum256(s.pkg.Video)
	b = appendRecord(b, tagVideoSum, sum[:])
	b = appendRecord(b, tagState, mustJSON(s.state))
	b = appendUintRecord(b, tagTick, uint64(s.tick))
	if s.selected != "" {
		b = appendRecord(b, tagSelected, []byte(s.selected))
	}
	if len(s.npcPos) > 0 {
		b = appendRecord(b, tagNPCPos, mustJSON(s.npcPos))
	}
	if len(s.messages) > 0 {
		b = appendRecord(b, tagMessages, mustJSON(s.messages))
	}
	if len(s.popups) > 0 {
		b = appendRecord(b, tagPopups, mustJSON(s.popups))
	}
	if len(s.opened) > 0 {
		b = appendRecord(b, tagOpened, mustJSON(s.opened))
	}
	if len(s.quizzes) > 0 {
		b = appendRecord(b, tagQuizzes, mustJSON(s.quizzes))
	}
	seg := s.cursor.Segment()
	b = appendRecord(b, tagSegment, []byte(seg.Name))
	b = appendUintRecord(b, tagCursor, uint64(s.cursor.Pos()))
	return binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// snapshotData is a fully-decoded snapshot, validated before any of it is
// applied to a session.
type snapshotData struct {
	videoSum []byte
	stateRaw []byte
	tick     int
	selected string
	npcPos   map[string]int
	messages []string
	popups   [][2]string
	opened   []string
	quizzes  []string
	segment  string
	cursor   int

	hasState, hasSegment, hasCursor bool
}

func badf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadSnapshot, fmt.Sprintf(format, args...))
}

func snapUvarint(payload []byte) (uint64, error) {
	v, n := binary.Uvarint(payload)
	if n <= 0 || n != len(payload) {
		return 0, badf("malformed varint record")
	}
	return v, nil
}

func snapInt(payload []byte) (int, error) {
	v, err := snapUvarint(payload)
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt32 {
		return 0, badf("integer field %d out of range", v)
	}
	return int(v), nil
}

func snapJSON(payload []byte, v any) error {
	if err := json.Unmarshal(payload, v); err != nil {
		return badf("field JSON: %v", err)
	}
	return nil
}

// decodeSnapshot parses and structurally validates snapshot bytes. Every
// failure wraps ErrBadSnapshot; nothing is applied anywhere.
func decodeSnapshot(snap []byte) (*snapshotData, error) {
	if len(snap) < len(snapMagic)+1+4 {
		return nil, badf("truncated (%d bytes)", len(snap))
	}
	if string(snap[:len(snapMagic)]) != snapMagic {
		return nil, badf("bad magic")
	}
	body, sum := snap[:len(snap)-4], binary.BigEndian.Uint32(snap[len(snap)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, badf("checksum mismatch")
	}
	rest := body[len(snapMagic):]
	version, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, badf("malformed version")
	}
	if version == 0 || version > snapVersion {
		return nil, badf("unsupported version %d (max %d)", version, snapVersion)
	}
	rest = rest[n:]
	d := &snapshotData{}
	for len(rest) > 0 {
		tag, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, badf("malformed record tag")
		}
		rest = rest[n:]
		size, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, badf("malformed record length")
		}
		rest = rest[n:]
		if size > maxSnapshotField || size > uint64(len(rest)) {
			return nil, badf("record %d claims %d bytes, %d remain", tag, size, len(rest))
		}
		payload := rest[:size]
		rest = rest[size:]
		var err error
		switch tag {
		case tagVideoSum:
			if len(payload) != sha256.Size {
				return nil, badf("video digest is %d bytes", len(payload))
			}
			d.videoSum = payload
		case tagState:
			d.stateRaw, d.hasState = payload, true
		case tagTick:
			d.tick, err = snapInt(payload)
		case tagSelected:
			d.selected = string(payload)
		case tagNPCPos:
			err = snapJSON(payload, &d.npcPos)
		case tagMessages:
			err = snapJSON(payload, &d.messages)
		case tagPopups:
			err = snapJSON(payload, &d.popups)
		case tagOpened:
			err = snapJSON(payload, &d.opened)
		case tagQuizzes:
			err = snapJSON(payload, &d.quizzes)
		case tagSegment:
			d.segment, d.hasSegment = string(payload), true
		case tagCursor:
			d.cursor, err = snapInt(payload)
			d.hasCursor = err == nil
		default:
			// Unknown tag: an additive extension from a newer writer; skip.
		}
		if err != nil {
			return nil, err
		}
	}
	if d.videoSum == nil || !d.hasState || !d.hasSegment || !d.hasCursor {
		return nil, badf("missing required fields")
	}
	for npc, pos := range d.npcPos {
		if pos < 0 {
			return nil, badf("negative dialogue position for %q", npc)
		}
	}
	return d, nil
}

// RestoreSession reopens a package blob and resumes the snapshotted
// session in it. See RestoreSessionFromPackage.
func RestoreSession(pkgBlob []byte, snap []byte, opts Options) (*Session, error) {
	pkg, err := gamepack.Open(pkgBlob)
	if err != nil {
		return nil, err
	}
	return RestoreSessionFromPackage(pkg, snap, opts)
}

// RestoreSessionFromPackage thaws a snapshot over an already-opened
// package: the session resumes at the recorded scenario, video frame,
// inventory, transcript and tick clock, without re-running any OnEnter
// script and without emitting events. The snapshot must have been taken
// against bit-identical footage (the embedded video digest is verified),
// so playback after restore is frame-exact. Every rejection wraps
// ErrBadSnapshot and leaves nothing allocated beyond the failed attempt.
func RestoreSessionFromPackage(pkg *gamepack.Package, snap []byte, opts Options) (*Session, error) {
	d, err := decodeSnapshot(snap)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(pkg.Video)
	if string(sum[:]) != string(d.videoSum) {
		return nil, badf("snapshot was taken against different footage")
	}
	state, err := core.LoadState(d.stateRaw)
	if err != nil {
		return nil, badf("state: %v", err)
	}
	proj := pkg.Project
	sc := proj.ScenarioByID(state.Scenario)
	if sc == nil {
		return nil, badf("unknown scenario %q", state.Scenario)
	}
	for _, id := range d.quizzes {
		if proj.QuizByID(id) == nil {
			return nil, badf("pending quiz %q is not defined", id)
		}
	}
	if d.selected != "" && !state.HasItem(d.selected) {
		return nil, badf("selected item %q is not in the inventory", d.selected)
	}
	s, err := buildSession(pkg, opts)
	if err != nil {
		return nil, err
	}
	restoreFail := func(err error) (*Session, error) {
		s.Close()
		return nil, err
	}
	if err := s.cursor.EnterSegment(d.segment); err != nil {
		return restoreFail(badf("cursor segment: %v", err))
	}
	if err := s.cursor.Seek(d.cursor); err != nil {
		return restoreFail(badf("cursor position: %v", err))
	}
	s.state = state
	s.sink.State = state
	s.tick = d.tick
	s.selected = d.selected
	s.npcPos = map[string]int{}
	for k, v := range d.npcPos {
		s.npcPos[k] = v
	}
	s.messages = append([]string(nil), d.messages...)
	s.popups = append([][2]string(nil), d.popups...)
	s.opened = append([]string(nil), d.opened...)
	s.quizzes = append([]string(nil), d.quizzes...)
	return s, nil
}
