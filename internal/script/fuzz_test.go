package script_test

import (
	"errors"
	"testing"

	"repro/internal/content"
	"repro/internal/script"
)

// FuzzParseScript throws arbitrary source at the event-language frontend
// (lexer + parser). The contract: every rejection is a positioned
// *script.Error — never a panic, never an untyped error — and accepted
// programs are non-nil. Seeds are the real scripts and conditions of the
// bundled demo courses, so mutation starts from the grammar actually in
// production, plus a few hand-picked pathological shapes.
func FuzzParseScript(f *testing.F) {
	for _, course := range []*content.Course{content.Classroom(), content.Museum(), content.StreetDemo()} {
		p := course.Project
		for _, sc := range p.Scenarios {
			if sc.OnEnter != "" {
				f.Add(sc.OnEnter)
			}
			for _, o := range sc.Objects {
				for _, ev := range o.Events {
					f.Add(ev.Script)
					if ev.Condition != "" {
						f.Add(ev.Condition + ";")
					}
				}
			}
		}
	}
	// Pathological shapes: truncation, nesting, operator runs, bad escapes.
	for _, s := range []string{
		"", ";", "say", `say "unterminated`, "if { }", "if x {", "}",
		"if a { if b { if c { say 1; } } } else if d { } else { }",
		"set x = ((((1))));", "set x = 1 + - ! 2;", "say 1 +;",
		"setflag f true; goto; end", `say "\q";`, "popup 1 2 3;",
		"say 99999999999999999999999999;", "x = 1;", "quiz quiz;",
		"say \"a\" + \"b\" * 3 - -2 % 0;", "if 1 < 2 <= 3 != 4 { say 5; }",
		"say 1 && 2 || ! 3;", "say (;", "say );", "say & | ~;",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := script.Compile(src)
		if err != nil {
			var se *script.Error
			if !errors.As(err, &se) {
				t.Fatalf("rejection is not a *script.Error: %T %v", err, err)
			}
			return
		}
		if prog == nil {
			t.Fatal("Compile returned nil program with nil error")
		}
		// A program the parser accepted must also survive static analysis
		// against an empty project context without panicking.
		_ = prog.Empty()
	})
}
