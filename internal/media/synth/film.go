package synth

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/media/raster"
)

// Actor is a walking character inside a shot.
type Actor struct {
	Tunic  raster.RGB // body color
	StartX float64    // x position (pixels) at local frame 0
	Speed  float64    // horizontal speed in pixels per frame
	Phase  float64    // bobbing phase offset in [0,1)
}

// Shot is a run of continuous frames filmed in one scene — the paper's
// definition of a scenario building block.
type Shot struct {
	Scene    SceneKind
	Frames   int     // duration of this shot in frames (>= 1)
	PanSpeed float64 // camera pan in pixels per frame
	Actors   []Actor
	FadeIn   int // frames of cross-fade from the previous shot (0 = hard cut)
	NoiseAmp int // sensor noise amplitude per channel
	Seed     uint64
}

// Cut is a ground-truth shot boundary.
type Cut struct {
	Frame     int  // first frame of the new shot
	Gradual   bool // true for a fade, false for a hard cut
	Span      int  // transition length in frames (0 for hard cuts)
	SceneFrom SceneKind
	SceneTo   SceneKind
}

// Film is an ordered list of shots plus global raster parameters. It renders
// any frame on demand as a pure function of the spec — the property the
// playback engine's random-access seek requires.
type Film struct {
	W, H   int
	FPS    int
	Shots  []Shot
	starts []int // starts[i] = global index of first frame of shot i
	total  int
}

// NewFilm assembles a film from explicit shots. It panics if any shot is
// degenerate, because a film with zero-length shots has no well-defined
// ground truth.
func NewFilm(w, h, fps int, shots []Shot) *Film {
	if w <= 0 || h <= 0 || fps <= 0 {
		panic(fmt.Sprintf("synth: invalid film parameters %dx%d@%d", w, h, fps))
	}
	if len(shots) == 0 {
		panic("synth: film needs at least one shot")
	}
	f := &Film{W: w, H: h, FPS: fps, Shots: shots}
	f.starts = make([]int, len(shots))
	acc := 0
	for i, s := range shots {
		if s.Frames < 1 {
			panic(fmt.Sprintf("synth: shot %d has %d frames", i, s.Frames))
		}
		if i > 0 && s.FadeIn >= s.Frames {
			panic(fmt.Sprintf("synth: shot %d fade (%d) >= duration (%d)", i, s.FadeIn, s.Frames))
		}
		f.starts[i] = acc
		acc += s.Frames
	}
	f.total = acc
	return f
}

// FrameCount returns the total number of frames in the film.
func (f *Film) FrameCount() int { return f.total }

// DurationSeconds returns the film length in seconds.
func (f *Film) DurationSeconds() float64 { return float64(f.total) / float64(f.FPS) }

// ShotIndexAt returns the index of the shot containing global frame i.
// It panics if i is out of range.
func (f *Film) ShotIndexAt(i int) int {
	if i < 0 || i >= f.total {
		panic(fmt.Sprintf("synth: frame %d out of range [0,%d)", i, f.total))
	}
	// Find the last start <= i.
	k := sort.Search(len(f.starts), func(j int) bool { return f.starts[j] > i })
	return k - 1
}

// ShotStart returns the global index of the first frame of shot k.
func (f *Film) ShotStart(k int) int { return f.starts[k] }

// Cuts returns the ground-truth shot boundaries (one per shot after the
// first).
func (f *Film) Cuts() []Cut {
	cuts := make([]Cut, 0, len(f.Shots)-1)
	for i := 1; i < len(f.Shots); i++ {
		s := f.Shots[i]
		cuts = append(cuts, Cut{
			Frame:     f.starts[i],
			Gradual:   s.FadeIn > 0,
			Span:      s.FadeIn,
			SceneFrom: f.Shots[i-1].Scene,
			SceneTo:   s.Scene,
		})
	}
	return cuts
}

// Render draws global frame i. Frames may be requested in any order.
func (f *Film) Render(i int) *raster.Frame {
	k := f.ShotIndexAt(i)
	local := i - f.starts[k]
	frame := f.renderShot(k, local)
	// Cross-fade from the previous shot during the first FadeIn frames.
	if k > 0 && f.Shots[k].FadeIn > 0 && local < f.Shots[k].FadeIn {
		prevLocal := f.Shots[k-1].Frames + local // extrapolated continuation
		prev := f.renderShot(k-1, prevLocal)
		alpha := float64(local+1) / float64(f.Shots[k].FadeIn+1)
		prev.Mix(frame, alpha)
		frame = prev
	}
	// Sensor noise last, so it rides on top of transitions too.
	s := f.Shots[k]
	if s.NoiseAmp > 0 {
		f.addNoise(frame, s.Seed, uint64(i), s.NoiseAmp)
	}
	return frame
}

// renderShot draws shot k at local frame t (which may exceed the shot's
// duration during fade extrapolation).
func (f *Film) renderShot(k, t int) *raster.Frame {
	s := f.Shots[k]
	fr := raster.New(f.W, f.H)
	top, bottom, _ := scenePalette(s.Scene)
	horizon := f.H * 2 / 3
	// Background: sky/wall gradient above the horizon, ground below.
	for y := 0; y < horizon; y++ {
		c := top.Lerp(bottom, 0.25*float64(y)/float64(horizon))
		fr.HLine(0, f.W-1, y, c)
	}
	for y := horizon; y < f.H; y++ {
		c := bottom.Lerp(raster.Black, 0.3*float64(y-horizon)/float64(f.H-horizon+1))
		fr.HLine(0, f.W-1, y, c)
	}
	pan := int(s.PanSpeed * float64(t))
	drawProps(fr, s.Scene, pan)
	// Actors walk and bob.
	for _, a := range s.Actors {
		x := int(a.StartX + a.Speed*float64(t))
		// wrap walkers around the frame with a margin
		period := f.W + 40
		x = ((x+20)%period+period)%period - 20
		bob := int(2 * unitWave(a.Phase+float64(t)/24))
		drawActor(fr, x, horizon+6-bob, a.Tunic)
	}
	return fr
}

// addNoise applies per-2×2-cell sensor noise, deterministic in (seed, frame).
func (f *Film) addNoise(fr *raster.Frame, seed, frame uint64, amp int) {
	for y := 0; y < fr.H; y += 2 {
		for x := 0; x < fr.W; x += 2 {
			cell := uint64(y/2)*uint64((fr.W+1)/2) + uint64(x/2)
			n := noise(seed, frame, cell, amp)
			for dy := 0; dy < 2 && y+dy < fr.H; dy++ {
				for dx := 0; dx < 2 && x+dx < fr.W; dx++ {
					i := 3 * ((y+dy)*fr.W + (x + dx))
					for c := 0; c < 3; c++ {
						v := int(fr.Pix[i+c]) + n
						if v < 0 {
							v = 0
						}
						if v > 255 {
							v = 255
						}
						fr.Pix[i+c] = uint8(v)
					}
				}
			}
		}
	}
}

// Spec parameterizes random film generation for the experiments.
type Spec struct {
	W, H, FPS     int
	Shots         int         // number of shots
	MinShotFrames int         // shortest shot length
	MaxShotFrames int         // longest shot length
	FadeFraction  float64     // fraction of boundaries that are gradual fades
	FadeFrames    int         // fade length when gradual
	NoiseAmp      int         // sensor noise amplitude
	Seed          int64       // master seed; same seed → same film
	Scenes        []SceneKind // allowed scene kinds (nil = all)
}

// Generate builds a random film from the spec. Adjacent shots always use
// different scene kinds so every boundary is a real, detectable content
// change — matching the paper's "same place or characters" segmentation
// criterion.
func Generate(spec Spec) *Film {
	if spec.Shots < 1 {
		panic("synth: spec needs at least one shot")
	}
	if spec.MinShotFrames < 1 || spec.MaxShotFrames < spec.MinShotFrames {
		panic("synth: invalid shot length range")
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	kinds := spec.Scenes
	if len(kinds) == 0 {
		kinds = AllSceneKinds()
	}
	shots := make([]Shot, spec.Shots)
	prevKind := SceneKind(-1)
	for i := range shots {
		kind := kinds[rng.Intn(len(kinds))]
		for len(kinds) > 1 && kind == prevKind {
			kind = kinds[rng.Intn(len(kinds))]
		}
		prevKind = kind
		frames := spec.MinShotFrames
		if spec.MaxShotFrames > spec.MinShotFrames {
			frames += rng.Intn(spec.MaxShotFrames - spec.MinShotFrames + 1)
		}
		fade := 0
		if i > 0 && rng.Float64() < spec.FadeFraction {
			fade = spec.FadeFrames
			if fade >= frames {
				fade = frames - 1
			}
		}
		nActors := rng.Intn(3)
		actors := make([]Actor, nActors)
		for a := range actors {
			actors[a] = Actor{
				Tunic:  raster.RGB{R: uint8(60 + rng.Intn(180)), G: uint8(60 + rng.Intn(180)), B: uint8(60 + rng.Intn(180))},
				StartX: rng.Float64() * float64(spec.W),
				Speed:  (rng.Float64() - 0.5) * 1.6,
				Phase:  rng.Float64(),
			}
		}
		shots[i] = Shot{
			Scene:    kind,
			Frames:   frames,
			PanSpeed: (rng.Float64() - 0.5) * 0.8,
			Actors:   actors,
			FadeIn:   fade,
			NoiseAmp: spec.NoiseAmp,
			Seed:     uint64(spec.Seed) ^ hash64(uint64(i)),
		}
	}
	return NewFilm(spec.W, spec.H, spec.FPS, shots)
}

// SceneShot is a human-authored shot description used by the examples:
// a scene kind plus a duration in seconds.
type SceneShot struct {
	Kind    SceneKind
	Seconds float64
	Fade    bool // cross-fade into this shot
}

// FromScenes builds a film from an explicit storyboard. The examples use it
// to shoot the paper's classroom/market footage.
func FromScenes(w, h, fps int, seed int64, scenes []SceneShot) *Film {
	rng := rand.New(rand.NewSource(seed))
	shots := make([]Shot, len(scenes))
	for i, sc := range scenes {
		frames := int(sc.Seconds * float64(fps))
		if frames < 1 {
			frames = 1
		}
		fade := 0
		if sc.Fade && i > 0 {
			fade = fps / 2
			if fade >= frames {
				fade = frames - 1
			}
		}
		shots[i] = Shot{
			Scene:    sc.Kind,
			Frames:   frames,
			PanSpeed: (rng.Float64() - 0.5) * 0.5,
			Actors: []Actor{{
				Tunic:  raster.RGB{R: uint8(80 + rng.Intn(150)), G: uint8(80 + rng.Intn(150)), B: uint8(80 + rng.Intn(150))},
				StartX: rng.Float64() * float64(w),
				Speed:  0.6,
				Phase:  rng.Float64(),
			}},
			FadeIn:   fade,
			NoiseAmp: 2,
			Seed:     uint64(seed) ^ hash64(uint64(i)),
		}
	}
	return NewFilm(w, h, fps, shots)
}
