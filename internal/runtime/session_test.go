package runtime

import (
	"strings"
	"testing"

	"repro/internal/content"
	"repro/internal/media/studio"
)

// recorder collects telemetry events.
type recorder struct {
	events []Event
}

func (r *recorder) Record(e Event) { r.events = append(r.events, e) }

func (r *recorder) kinds() map[string]int {
	m := map[string]int{}
	for _, e := range r.events {
		m[e.Kind]++
	}
	return m
}

func classroomSession(t testing.TB) (*Session, *recorder) {
	t.Helper()
	blob, err := content.Classroom().BuildPackage(studio.Options{QStep: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	s, err := NewSession(blob, Options{Observer: rec})
	if err != nil {
		t.Fatal(err)
	}
	return s, rec
}

func TestSessionStartState(t *testing.T) {
	s, _ := classroomSession(t)
	if s.State().Scenario != "classroom" {
		t.Fatalf("start scenario = %q", s.State().Scenario)
	}
	// The classroom OnEnter briefing ran.
	if len(s.Messages()) == 0 || !strings.Contains(s.Messages()[0], "TEACHER") {
		t.Fatalf("briefing missing: %v", s.Messages())
	}
	// Frame renders with mounted sprites.
	f, err := s.Frame()
	if err != nil {
		t.Fatal(err)
	}
	if f.W != 160 || f.H != 120 {
		t.Fatalf("frame %dx%d", f.W, f.H)
	}
}

func TestFullClassroomWalkthrough(t *testing.T) {
	// The paper's §3.2 mission, end to end, through the session API.
	s, rec := classroomSession(t)

	// 1. Talk to the teacher (fixed conversation cycles).
	s.Talk("teacher")
	s.Talk("teacher")
	if got := s.Messages(); !strings.Contains(got[len(got)-1], "market") {
		t.Fatalf("teacher dialogue: %v", got)
	}

	// 2. Examine the computer: discovers the empty RAM slot and earns the
	// diagnosis badge — once, no matter how often it is re-examined.
	s.Examine("computer")
	if !s.State().Learned["ram-identification"] {
		t.Fatal("examining the computer should teach ram-identification")
	}
	if s.State().CountItem("scout-badge") != 1 {
		t.Fatal("scout badge not granted on diagnosis")
	}
	s.Examine("computer")
	if s.State().CountItem("scout-badge") != 1 {
		t.Fatal("scout badge duplicated on re-examine")
	}

	// 3. Pick up the coin.
	if !s.Take("desk-coin") {
		t.Fatal("coin take failed")
	}
	if !s.State().HasItem("coin") {
		t.Fatal("coin not in inventory")
	}
	// The coin left the scene.
	if s.ObjectAt(62, 72) != nil {
		t.Fatal("coin still visible after take")
	}

	// 4. Walk to the market via the nav button.
	s.Click(140, 100) // the to-market button region
	if s.State().Scenario != "market" {
		t.Fatalf("scenario = %q, want market", s.State().Scenario)
	}

	// 5. Buy the RAM (take with a condition consuming the coin).
	if !s.Take("stall-ram") {
		t.Fatal("ram take failed despite coin")
	}
	if s.State().HasItem("coin") {
		t.Fatal("coin should have been spent")
	}
	if !s.State().HasItem("ram module") {
		t.Fatal("ram module missing")
	}
	if !s.State().Learned["hardware-shopping"] {
		t.Fatal("shopping knowledge not delivered")
	}

	// 6. Return and repair.
	s.Click(140, 100) // back button
	if s.State().Scenario != "classroom" {
		t.Fatal("did not return to classroom")
	}
	s.UseItemOn("ram module", "computer")
	st := s.State()
	if !st.Flags["fixed"] || !st.Ended || st.Outcome != "victory" {
		t.Fatalf("repair failed: flags=%v ended=%v outcome=%q", st.Flags, st.Ended, st.Outcome)
	}
	// Three rewards along the arc: diagnosis, purchase, repair (§3.3's
	// "complete some requests or missions" sub-rewards).
	if !st.HasItem("repair-badge") || len(st.Rewards) != 3 {
		t.Fatalf("rewards = %v", st.Rewards)
	}
	if st.Rewards[0] != "scout-badge" || st.Rewards[2] != "repair-badge" {
		t.Fatalf("reward order = %v", st.Rewards)
	}
	if st.Vars["score"] != 50 {
		t.Fatalf("score = %d", st.Vars["score"])
	}
	if len(st.LearnedUnits()) != 3 {
		t.Fatalf("learned = %v", st.LearnedUnits())
	}
	// Popup was queued.
	kind, contentStr, ok := s.NextPopup()
	if !ok || kind != "text" || !strings.Contains(contentStr, "WELL DONE") {
		t.Fatalf("popup = %q %q %v", kind, contentStr, ok)
	}
	// Telemetry saw the whole arc.
	k := rec.kinds()
	for _, want := range []string{"dialogue", "examine", "take", "goto", "use", "learn", "reward", "end"} {
		if k[want] == 0 {
			t.Errorf("no %q telemetry: %v", want, k)
		}
	}
	if k["error"] != 0 {
		t.Errorf("errors recorded: %v", rec.events)
	}
	// Post-end interactions are inert.
	before := len(s.Messages())
	s.Click(140, 100)
	if len(s.Messages()) != before {
		t.Error("interaction after end produced effects")
	}
}

func TestConditionBlocksTake(t *testing.T) {
	s, rec := classroomSession(t)
	s.Click(140, 100) // go to market without a coin
	if s.State().Scenario != "market" {
		t.Fatal("nav failed")
	}
	if s.Take("stall-ram") {
		t.Fatal("took the RAM without a coin")
	}
	if s.State().HasItem("ram module") {
		t.Fatal("inventory corrupted")
	}
	// The stall's OnClick fallback explains why.
	if msg := s.LastMessage(); !strings.Contains(msg, "No coin") {
		t.Errorf("vendor message = %q", msg)
	}
	if rec.kinds()["take-blocked"] == 0 {
		t.Error("blocked take not recorded")
	}
}

func TestUseWrongItem(t *testing.T) {
	s, _ := classroomSession(t)
	s.Take("desk-coin")
	s.UseItemOn("coin", "computer")
	if msg := s.LastMessage(); !strings.Contains(msg, "does not work") {
		t.Errorf("wrong-item message = %q", msg)
	}
	if s.State().Flags["fixed"] {
		t.Fatal("wrong item fixed the computer")
	}
	s.UseItemOn("ram module", "computer") // not carried
	if msg := s.LastMessage(); !strings.Contains(msg, "do not have") {
		t.Errorf("missing-item message = %q", msg)
	}
}

func TestSelectItemFlow(t *testing.T) {
	s, _ := classroomSession(t)
	if err := s.SelectItem("coin"); err == nil {
		t.Fatal("selected an item not carried")
	}
	s.Take("desk-coin")
	if err := s.SelectItem("coin"); err != nil {
		t.Fatal(err)
	}
	if s.SelectedItem() != "coin" {
		t.Fatal("selection lost")
	}
	// Clicking the computer with coin selected attempts use-on.
	s.Click(100, 25)
	if s.SelectedItem() != "" {
		t.Fatal("selection should clear after use")
	}
	if msg := s.LastMessage(); !strings.Contains(msg, "does not work") {
		t.Errorf("message = %q", msg)
	}
	s.Take("desk-coin") // already taken; hidden now
	s.ClearSelection()
}

func TestObjectAtTopmost(t *testing.T) {
	s, _ := classroomSession(t)
	if o := s.ObjectAt(100, 25); o == nil || o.ID != "computer" {
		t.Fatalf("ObjectAt(100,25) = %v", o)
	}
	if o := s.ObjectAt(1, 1); o != nil {
		t.Fatalf("ObjectAt(1,1) = %v, want nil", o)
	}
}

func TestClickMissAndHotspotDescription(t *testing.T) {
	s, rec := classroomSession(t)
	s.Click(1, 1)
	if rec.kinds()["click"] == 0 {
		t.Error("miss click not recorded")
	}
	// Clicking the computer without selection fires its OnClick script.
	s.Click(100, 25)
	if msg := s.LastMessage(); !strings.Contains(msg, "examine") {
		t.Errorf("computer click message = %q", msg)
	}
}

func TestTickAdvancesAndLoops(t *testing.T) {
	s, _ := classroomSession(t)
	for i := 0; i < 200; i++ { // longer than the 40-frame segment: must loop
		if err := s.Tick(); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Frame(); err != nil {
			t.Fatal(err)
		}
	}
	if s.Ticks() != 200 {
		t.Fatalf("ticks = %d", s.Ticks())
	}
}

func TestSaveRestore(t *testing.T) {
	s, _ := classroomSession(t)
	s.Take("desk-coin")
	s.Click(140, 100) // to market
	saved, err := s.SaveState()
	if err != nil {
		t.Fatal(err)
	}
	// Fresh session, restore.
	s2, _ := classroomSession(t)
	if err := s2.RestoreState(saved); err != nil {
		t.Fatal(err)
	}
	if s2.State().Scenario != "market" || !s2.State().HasItem("coin") {
		t.Fatal("restore lost state")
	}
	// Restored session continues: buy, return, fix.
	if !s2.Take("stall-ram") {
		t.Fatal("take after restore failed")
	}
	if err := s2.RestoreState([]byte(`{"scenario":"narnia"}`)); err == nil {
		t.Fatal("restore to unknown scenario accepted")
	}
	if err := s2.RestoreState([]byte("{bad")); err == nil {
		t.Fatal("restore of bad JSON accepted")
	}
}

func TestGotoScenarioAPI(t *testing.T) {
	s, _ := classroomSession(t)
	if err := s.GotoScenario("market"); err != nil {
		t.Fatal(err)
	}
	if s.State().Scenario != "market" {
		t.Fatal("goto failed")
	}
	if err := s.GotoScenario("narnia"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestMuseumEnableDisableFlow(t *testing.T) {
	blob, err := content.Museum().BuildPackage(studio.Options{QStep: 10})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(blob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Locked door first.
	s.GotoScenario("corridor")
	s.Click(40, 40) // lab-door click: locked message
	if !strings.Contains(s.LastMessage(), "Locked") {
		t.Fatalf("door message = %q", s.LastMessage())
	}
	if s.State().Scenario != "corridor" {
		t.Fatal("walked through a locked door")
	}
	// Key, unlock, study, win.
	if !s.Take("floor-key") {
		t.Fatal("key take failed")
	}
	s.UseItemOn("brass key", "lab-door")
	if s.State().Scenario != "lab" {
		t.Fatalf("scenario = %q, want lab", s.State().Scenario)
	}
	if !s.State().Learned["lab-safety"] {
		t.Fatal("lab OnEnter did not run")
	}
	s.Examine("generator")
	if !s.Ended() || s.Outcome() != "victory" {
		t.Fatal("museum mission incomplete")
	}
	if !s.State().HasItem("scholar-badge") {
		t.Fatal("badge missing")
	}
}

func TestStreetUmbrellaOpenResource(t *testing.T) {
	blob, err := content.StreetDemo().BuildPackage(studio.Options{QStep: 10})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(blob, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Clicking the umbrella (an Item) examines it.
	s.Click(70, 60)
	if !strings.Contains(s.LastMessage(), "umbrella") {
		t.Fatalf("examine message = %q", s.LastMessage())
	}
	// The INFO button opens a web resource.
	s.Click(10, 100)
	opened := s.OpenedResources()
	if len(opened) != 1 || !strings.Contains(opened[0], "http://") {
		t.Fatalf("opened = %v", opened)
	}
	// Take the umbrella, then switch scenes and back; it stays taken.
	if !s.Take("umbrella") {
		t.Fatal("umbrella take failed")
	}
	s.Click(140, 100) // go indoors
	if s.State().Scenario != "indoors" {
		t.Fatal("nav failed")
	}
	s.Click(140, 100) // back out
	if s.ObjectAt(70, 60) != nil {
		t.Fatal("umbrella respawned")
	}
}

func TestSessionRejectsBadPackage(t *testing.T) {
	if _, err := NewSession([]byte("junk"), Options{}); err == nil {
		t.Fatal("junk package accepted")
	}
}
