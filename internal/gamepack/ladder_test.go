package gamepack

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/blobstore"
	"repro/internal/core"
	"repro/internal/media/container"
	"repro/internal/media/studio"
	"repro/internal/media/synth"
)

// ladderFixture records a 10-segment film at the default ladder and
// wraps it with a matching project.
func ladderFixture(t *testing.T, seed int64) (*core.Project, []TierVideo) {
	t.Helper()
	film := synth.Generate(synth.Spec{
		W: 96, H: 64, FPS: 10,
		Shots: 10, MinShotFrames: 20, MaxShotFrames: 24,
		NoiseAmp: 1, Seed: seed,
	})
	rungs, err := studio.RecordLadder(film, studio.Options{GOP: 10, ShotMarkers: true}, studio.DefaultLadder())
	if err != nil {
		t.Fatal(err)
	}
	videos := make([]TierVideo, len(rungs))
	for i, r := range rungs {
		videos[i] = TierVideo{Tier: r.Tier, Video: r.Video}
	}
	r, err := container.Open(videos[0].Video)
	if err != nil {
		t.Fatal(err)
	}
	p := core.NewProject("Ladder Course")
	p.StartScenario = "s0"
	for i, ch := range r.Chapters() {
		id := "s" + string(rune('0'+i))
		p.Scenarios = append(p.Scenarios, &core.Scenario{ID: id, Name: ch.Name, Segment: ch.Name})
		if i == 0 {
			p.StartScenario = id
		}
	}
	return p, videos
}

func TestBuildLadderRoundTrip(t *testing.T) {
	p, videos := ladderFixture(t, 12)
	blob, err := BuildLadder(p, videos)
	if err != nil {
		t.Fatal(err)
	}
	tiers, err := LadderOf(blob)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"", "low", "med", "min"}; !reflect.DeepEqual(tiers, want) {
		t.Fatalf("LadderOf = %v, want %v", tiers, want)
	}
	// A ladder-unaware Open sees exactly the canonical rung.
	pkg, err := Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	var canonical []byte
	for _, tv := range videos {
		if tv.Tier == "" {
			canonical = tv.Video
		}
	}
	if !bytes.Equal(pkg.Video, canonical) {
		t.Error("Open did not yield the canonical rung")
	}
	// OpenTier swaps in the requested rung; geometry and chapters match.
	ref, _ := container.Open(canonical)
	for _, tv := range videos {
		got, err := OpenTier(blob, tv.Tier)
		if err != nil {
			t.Fatalf("OpenTier(%q): %v", tv.Tier, err)
		}
		if !bytes.Equal(got.Video, tv.Video) {
			t.Errorf("OpenTier(%q) yielded wrong rung", tv.Tier)
		}
		r, err := container.Open(got.Video)
		if err != nil {
			t.Fatalf("OpenTier(%q) video: %v", tv.Tier, err)
		}
		if r.Meta() != ref.Meta() {
			t.Errorf("tier %q meta = %+v, canonical %+v", tv.Tier, r.Meta(), ref.Meta())
		}
		if !reflect.DeepEqual(r.Chapters(), ref.Chapters()) {
			t.Errorf("tier %q chapter table differs", tv.Tier)
		}
	}
	if _, err := OpenTier(blob, "ghost"); !errors.Is(err, ErrBadLadder) {
		t.Errorf("OpenTier(ghost) = %v, want ErrBadLadder", err)
	}
	// The extra rungs genuinely differ: a coarser quantizer must shrink
	// the payload, or the ladder gives ABR nothing to choose between.
	man, err := ManifestOf(blob)
	if err != nil {
		t.Fatal(err)
	}
	full := man.VideoSection("").PayloadSize()
	min := man.VideoSection("min").PayloadSize()
	if min >= full {
		t.Errorf("min rung %d bytes >= full rung %d bytes", min, full)
	}
}

func TestBuildLadderValidation(t *testing.T) {
	p, videos := ladderFixture(t, 12)
	var noCanonical []TierVideo
	for _, tv := range videos {
		if tv.Tier != "" {
			noCanonical = append(noCanonical, tv)
		}
	}
	if _, err := BuildLadder(p, noCanonical); !errors.Is(err, ErrBadLadder) {
		t.Errorf("missing canonical tier: err = %v", err)
	}
	dup := append(append([]TierVideo(nil), videos...), videos[1])
	if _, err := BuildLadder(p, dup); !errors.Is(err, ErrBadLadder) {
		t.Errorf("duplicate tier: err = %v", err)
	}
	// A rung from a different film (different chapters) must be rejected:
	// switching to it would not be frame-exact.
	otherFilm := synth.Generate(synth.Spec{
		W: 96, H: 64, FPS: 10,
		Shots: 4, MinShotFrames: 20, MaxShotFrames: 24,
		NoiseAmp: 1, Seed: 99,
	})
	other, err := studio.Record(otherFilm, studio.Options{QStep: 24, GOP: 10, ShotMarkers: true})
	if err != nil {
		t.Fatal(err)
	}
	mixed := append([]TierVideo(nil), videos...)
	mixed[2] = TierVideo{Tier: mixed[2].Tier, Video: other}
	if _, err := BuildLadder(p, mixed); !errors.Is(err, ErrBadLadder) {
		t.Errorf("foreign rung: err = %v", err)
	}
	// Single-tier ladders degrade to a plain package.
	single, err := BuildLadder(p, []TierVideo{{Tier: "", Video: videos[0].Video}})
	if err != nil {
		t.Fatal(err)
	}
	if tiers, _ := LadderOf(single); !reflect.DeepEqual(tiers, []string{""}) {
		t.Errorf("single-tier ladder tiers = %v", tiers)
	}
}

// TestLadderManifestDedup pins the dedup accounting exactly: within one
// ladder package the rungs share no video chunks (distinct quantizers
// produce distinct bytes), the store holds exactly the manifest's
// distinct hashes, and an edit to one segment re-deposits only that
// segment's chunks per tier.
func TestLadderManifestDedup(t *testing.T) {
	p, videos := ladderFixture(t, 12)
	blob, err := BuildLadder(p, videos)
	if err != nil {
		t.Fatal(err)
	}
	man, err := ManifestOf(blob)
	if err != nil {
		t.Fatal(err)
	}
	// Shared chunks across tiers: counted exactly — zero, because every
	// rung's quantizer differs. (If rungs ever shared bytes, client and
	// server tier ledgers could legitimately disagree; this guard keeps
	// E19's exact reconciliation honest.)
	for tier, n := range man.SharedTierChunks() {
		if n != 0 {
			t.Errorf("tier %q shares %d chunks with the canonical rung", tier, n)
		}
	}
	distinct := map[blobstore.Hash]bool{}
	perTier := map[string]map[blobstore.Hash]bool{}
	for _, sc := range man.Sections {
		for _, c := range sc.Chunks {
			distinct[c.Hash] = true
			if tier, ok := VideoSectionTier(sc.Name); ok {
				if perTier[tier] == nil {
					perTier[tier] = map[blobstore.Hash]bool{}
				}
				perTier[tier][c.Hash] = true
			}
		}
	}
	store, err := blobstore.New(blobstore.Options{Backend: blobstore.NewMemory()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DepositChunks(blob, store); err != nil {
		t.Fatal(err)
	}
	if got := store.Stats().Chunks; got != len(distinct) {
		t.Errorf("store holds %d chunks, manifest names %d distinct", got, len(distinct))
	}
	// Edit one shot and rebuild from the same seed: per tier, only the
	// chunks covering the edited segment (plus the rewritten head/index)
	// change, so delta sync stays per-tier cheap.
	film := synth.Generate(synth.Spec{
		W: 96, H: 64, FPS: 10,
		Shots: 10, MinShotFrames: 20, MaxShotFrames: 24,
		NoiseAmp: 1, Seed: 12,
	})
	film.Shots[5].Seed ^= 0xbeef
	rungs2, err := studio.RecordLadder(film, studio.Options{GOP: 10, ShotMarkers: true}, studio.DefaultLadder())
	if err != nil {
		t.Fatal(err)
	}
	videos2 := make([]TierVideo, len(rungs2))
	for i, r := range rungs2 {
		videos2[i] = TierVideo{Tier: r.Tier, Video: r.Video}
	}
	blob2, err := BuildLadder(p, videos2)
	if err != nil {
		t.Fatal(err)
	}
	man2, err := ManifestOf(blob2)
	if err != nil {
		t.Fatal(err)
	}
	for tier, before := range perTier {
		sc := man2.VideoSection(tier)
		var changed, total int
		for _, c := range sc.Chunks {
			total++
			if !before[c.Hash] {
				changed++
			}
		}
		// 10 segments, 1 edited: well under half the chunks may change
		// (the edited segment plus the head, whose index rewrites).
		if changed == 0 || changed > total/2 {
			t.Errorf("tier %q: %d of %d chunks changed after a 1-segment edit", tier, changed, total)
		}
	}
}
