package synth

import "repro/internal/media/raster"

// SceneKind selects one of the built-in synthetic sets. Each kind has a
// distinctive palette and prop layout so that adjacent shots from different
// kinds produce a clear histogram discontinuity (a "cut"), while shots of
// the same kind remain statistically close — exactly the structure the
// paper assumes when it defines a scenario as "a series of continuous shots
// with the same place or characters" (§2.1).
type SceneKind int

// The built-in scene kinds. Classroom, Market and Street come straight from
// the paper's running examples; the rest give films enough variety for the
// segmentation experiments.
const (
	Classroom SceneKind = iota
	Market
	Street
	Museum
	Lab
	Corridor
	numSceneKinds
)

// String returns the scene kind's name.
func (k SceneKind) String() string {
	switch k {
	case Classroom:
		return "classroom"
	case Market:
		return "market"
	case Street:
		return "street"
	case Museum:
		return "museum"
	case Lab:
		return "lab"
	case Corridor:
		return "corridor"
	default:
		return "unknown"
	}
}

// AllSceneKinds lists every built-in scene kind.
func AllSceneKinds() []SceneKind {
	ks := make([]SceneKind, numSceneKinds)
	for i := range ks {
		ks[i] = SceneKind(i)
	}
	return ks
}

// scenePalette returns sky/top color, ground/bottom color and an accent
// color for props.
func scenePalette(k SceneKind) (top, bottom, accent raster.RGB) {
	switch k {
	case Classroom:
		return raster.RGB{R: 235, G: 230, B: 210}, raster.RGB{R: 150, G: 120, B: 90}, raster.RGB{R: 40, G: 90, B: 50}
	case Market:
		return raster.RGB{R: 250, G: 210, B: 150}, raster.RGB{R: 170, G: 140, B: 100}, raster.RGB{R: 200, G: 60, B: 50}
	case Street:
		return raster.RGB{R: 140, G: 180, B: 230}, raster.RGB{R: 90, G: 90, B: 95}, raster.RGB{R: 210, G: 200, B: 70}
	case Museum:
		return raster.RGB{R: 210, G: 205, B: 225}, raster.RGB{R: 120, G: 115, B: 135}, raster.RGB{R: 170, G: 140, B: 60}
	case Lab:
		return raster.RGB{R: 215, G: 235, B: 235}, raster.RGB{R: 160, G: 175, B: 180}, raster.RGB{R: 60, G: 140, B: 170}
	case Corridor:
		return raster.RGB{R: 200, G: 200, B: 190}, raster.RGB{R: 110, G: 105, B: 95}, raster.RGB{R: 90, G: 60, B: 40}
	default:
		return raster.Gray, raster.DarkGry, raster.White
	}
}

// drawProps paints the static furniture of a scene kind onto f, offset
// horizontally by pan pixels (camera pan). Props tile every propPeriod
// pixels so a pan never runs out of scenery.
func drawProps(f *raster.Frame, k SceneKind, pan int) {
	const propPeriod = 96
	_, _, accent := scenePalette(k)
	horizon := f.H * 2 / 3
	// Tile props across the visible range.
	start := (pan/propPeriod - 1) * propPeriod
	for base := start; base < pan+f.W+propPeriod; base += propPeriod {
		x := base - pan
		switch k {
		case Classroom:
			// desk
			f.FillRect(raster.Rect{X: x + 10, Y: horizon - 6, W: 28, H: 5}, raster.RGB{R: 120, G: 85, B: 50})
			f.FillRect(raster.Rect{X: x + 12, Y: horizon - 1, W: 3, H: 8}, raster.RGB{R: 90, G: 60, B: 35})
			f.FillRect(raster.Rect{X: x + 33, Y: horizon - 1, W: 3, H: 8}, raster.RGB{R: 90, G: 60, B: 35})
			// blackboard
			f.FillRect(raster.Rect{X: x + 48, Y: 8, W: 36, H: 18}, accent)
			f.DrawRect(raster.Rect{X: x + 48, Y: 8, W: 36, H: 18}, raster.RGB{R: 230, G: 220, B: 200})
		case Market:
			// stall with awning
			f.FillRect(raster.Rect{X: x + 8, Y: horizon - 18, W: 40, H: 16}, raster.RGB{R: 150, G: 110, B: 70})
			for i := 0; i < 5; i++ {
				c := accent
				if i%2 == 1 {
					c = raster.White
				}
				f.FillRect(raster.Rect{X: x + 8 + i*8, Y: horizon - 24, W: 8, H: 6}, c)
			}
			// crate of goods
			f.FillRect(raster.Rect{X: x + 56, Y: horizon - 8, W: 14, H: 8}, raster.RGB{R: 190, G: 160, B: 60})
		case Street:
			// building
			f.FillRect(raster.Rect{X: x + 4, Y: 10, W: 30, H: horizon - 10}, raster.RGB{R: 170, G: 150, B: 140})
			for wy := 0; wy < 3; wy++ {
				for wx := 0; wx < 3; wx++ {
					f.FillRect(raster.Rect{X: x + 8 + wx*9, Y: 14 + wy*12, W: 5, H: 7}, raster.RGB{R: 70, G: 80, B: 120})
				}
			}
			// lamp post
			f.FillRect(raster.Rect{X: x + 60, Y: 18, W: 2, H: horizon - 18}, raster.DarkGry)
			f.FillCircle(x+61, 16, 3, accent)
		case Museum:
			// pedestal with exhibit
			f.FillRect(raster.Rect{X: x + 20, Y: horizon - 14, W: 12, H: 14}, raster.LightGr)
			f.FillCircle(x+26, horizon-19, 5, accent)
			// framed painting
			f.FillRect(raster.Rect{X: x + 52, Y: 12, W: 22, H: 16}, accent)
			f.DrawRect(raster.Rect{X: x + 50, Y: 10, W: 26, H: 20}, raster.RGB{R: 80, G: 60, B: 30})
		case Lab:
			// bench with instrument
			f.FillRect(raster.Rect{X: x + 10, Y: horizon - 10, W: 44, H: 8}, raster.RGB{R: 190, G: 200, B: 205})
			f.FillRect(raster.Rect{X: x + 16, Y: horizon - 18, W: 8, H: 8}, accent)
			f.FillRect(raster.Rect{X: x + 34, Y: horizon - 16, W: 4, H: 6}, raster.RGB{R: 100, G: 170, B: 120})
		case Corridor:
			// door
			f.FillRect(raster.Rect{X: x + 24, Y: horizon - 34, W: 16, H: 34}, accent)
			f.FillCircle(x+37, horizon-18, 1, raster.Yellow)
			// ceiling light
			f.FillRect(raster.Rect{X: x + 60, Y: 4, W: 12, H: 3}, raster.White)
		}
	}
}

// drawActor paints a simple person sprite (head + body) centered at (cx, cy
// is feet level) with the given tunic color. Actors give shots "the same
// characters" and provide the moving foreground the shot detector must not
// mistake for a cut.
func drawActor(f *raster.Frame, cx, feet int, tunic raster.RGB) {
	h := 22 // total height
	// legs
	f.FillRect(raster.Rect{X: cx - 3, Y: feet - 7, W: 2, H: 7}, raster.DarkGry)
	f.FillRect(raster.Rect{X: cx + 1, Y: feet - 7, W: 2, H: 7}, raster.DarkGry)
	// body
	f.FillRect(raster.Rect{X: cx - 4, Y: feet - h + 8, W: 9, H: h - 15}, tunic)
	// head
	f.FillCircle(cx, feet-h+4, 4, raster.RGB{R: 235, G: 200, B: 170})
}
