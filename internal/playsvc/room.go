// Live classroom fan-out: one driven session, many watchers.
//
// A Room wraps one hosted runtime.Session with a driver seat and N watcher
// subscriptions. The driver is an ordinary play-service client — instructor
// or policy — acting through the existing act path (JSON or binary); every
// state change renders the presentation frame ONCE into an immutable,
// sequence-numbered publication, and that same payload fans out to every
// subscriber. Per-watcher delivery rides a small bounded ring: a slow or
// stalled watcher overflows its own ring (oldest frames are skipped, a
// counter keeps the honest tally) and never holds the driver — or any
// other watcher — back. Frames are skippable; events and messages are not:
// they are served as coalesced tails keyed by per-watcher seen-counts, the
// same ack idiom the act path uses, so a watcher that missed frames still
// reconstructs the full classroom transcript. Watchers also answer the
// pending quiz (POST /room/answer); the room tallies answers per question
// for the instructor's cohort view.
//
// Lock order: hosted.mu → Room.mu → watcher.mu, always. The publish path
// runs under the driven session's lock (it renders from live state); the
// watcher-facing paths (watch, answer, stats) take only Room.mu and the
// watcher's own lock, so a thousand pollers never contend with the driver
// beyond the fan-out loop itself.
package playsvc

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/media/raster"
	"repro/internal/runtime"
)

const (
	// roomRingSlots is the per-watcher publication ring. Small on purpose:
	// a watcher more than this many frames behind is watching a slideshow
	// anyway — skipping to fresher frames beats buffering stale ones.
	roomRingSlots = 4
	// roomLogCap bounds the retained event and message tails. Watchers
	// further behind than this see the base advance past their seen-count
	// (a join-late gap, visible in the chunk's base field), never a stall.
	roomLogCap = 4096
	// roomWatcherCap bounds subscriptions per room (joins beyond it 503).
	roomWatcherCap = 8192
	// maxWatchWait bounds one long-poll hold; it must stay comfortably
	// under the gateway's hopTimeout so a relayed poll never times out
	// at the hop while the node is still holding it.
	maxWatchWait = 8 * time.Second
)

// pub is one immutable publication: the frame rendered once per state
// change, shared by reference with every watcher ring. Nothing in a pub is
// mutated after publish — that is the read-only sharing contract that
// makes zero-copy fan-out safe (see Session.FrameInto).
type pub struct {
	seq  int64
	tick int
	at   int64 // publish time, unix nanos (fan-out latency measurement)
	w, h int
	pix  []byte // 24-bit RGB, immutable
}

// tally accumulates one quiz question's cohort answers.
type tally struct {
	correct int            // correct-choice index (from the course quiz)
	votes   []int          // count per choice
	byID    map[string]int // last answer per watcher (re-answer moves the vote)
}

// watcher is one subscription: a bounded ring of pending publications plus
// a wake channel. The ring holds pointers to shared pubs, so N watchers
// cost N small rings, not N frame copies.
type watcher struct {
	id string

	mu       sync.Mutex
	ring     [roomRingSlots]*pub
	head, n  int
	skipped  int64 // cumulative frames dropped for this watcher
	reported int64 // skipped value at the last delivery (for per-poll deltas)
	gone     bool

	notify   chan struct{} // cap 1; nudged on push and on room close
	lastSeen atomic.Int64  // unix nanos, for idle pruning
}

// push appends a publication, dropping the oldest when the ring is full.
// Called with Room.mu held; takes only the watcher's own lock, so one
// stalled watcher cannot slow the fan-out loop.
func (w *watcher) push(p *pub) (dropped bool) {
	w.mu.Lock()
	if w.gone {
		w.mu.Unlock()
		return false
	}
	if w.n == len(w.ring) {
		w.ring[w.head] = nil
		w.head = (w.head + 1) % len(w.ring)
		w.n--
		w.skipped++
		dropped = true
	}
	w.ring[(w.head+w.n)%len(w.ring)] = p
	w.n++
	w.mu.Unlock()
	select {
	case w.notify <- struct{}{}:
	default:
	}
	return dropped
}

// pop takes the next pending publication. With latest set it drains the
// ring to the newest entry, counting the bypassed ones as skipped (the
// long-poll policy: a client that polls slowly wants the freshest frame).
// skipTotal is the watcher's cumulative skip count after the pop;
// skipDelta is how much of it accrued since the previous delivery.
func (w *watcher) pop(latest bool) (p *pub, skipTotal, skipDelta int64, gone bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.gone {
		return nil, w.skipped, 0, true
	}
	if w.n == 0 {
		return nil, w.skipped, 0, false
	}
	if latest {
		for w.n > 1 {
			w.ring[w.head] = nil
			w.head = (w.head + 1) % len(w.ring)
			w.n--
			w.skipped++
		}
	}
	p = w.ring[w.head]
	w.ring[w.head] = nil
	w.head = (w.head + 1) % len(w.ring)
	w.n--
	skipDelta = w.skipped - w.reported
	w.reported = w.skipped
	return p, w.skipped, skipDelta, false
}

// wake nudges a blocked poll (push path and room close).
func (w *watcher) wake() {
	select {
	case w.notify <- struct{}{}:
	default:
	}
}

// Room is the broadcast hub for one shared session. All methods are safe
// for concurrent use.
type Room struct {
	id string
	m  *Manager
	h  *hosted // the driven session

	mu     sync.Mutex
	closed bool
	seq    int64
	cur    *pub
	// events/messages are the retained broadcast tails; eventBase/msgBase
	// are the absolute indices of element 0, matching the driven session's
	// own numbering — so watcher seen-counts and driver seen-counts speak
	// the same coordinates.
	events    []runtime.Event
	eventBase int
	messages  []string
	msgBase   int
	// lastEvents/lastMsgs are the absolute totals already copied out of
	// the driven session (publish copies only the delta).
	lastEvents int
	lastMsgs   int
	quiz       string            // pending quiz id at the last publish
	tallies    map[string]*tally // by quiz id, for every quiz ever pending
	watchers   map[string]*watcher

	renders   atomic.Int64 // publications (exactly one render each)
	delivered atomic.Int64 // frames handed to watchers
	skipped   atomic.Int64 // frames dropped from watcher rings
	answers   atomic.Int64 // distinct quiz answers recorded
}

func newRoom(m *Manager, id string, h *hosted) *Room {
	return &Room{
		id:       id,
		m:        m,
		h:        h,
		tallies:  map[string]*tally{},
		watchers: map[string]*watcher{},
	}
}

// ID returns the room identifier (also the driven session's id, so a
// cluster gateway routes the driver and the watchers to the same node).
func (r *Room) ID() string { return r.id }

// publish renders the driven session once and fans the publication out to
// every watcher ring. Called with r.h.mu held (the act and frame paths own
// the session lock when state changes); the render happens exactly once no
// matter how many watchers subscribe — that is the O(1)-per-tick contract.
func (r *Room) publish() {
	var fr raster.Frame
	if err := r.h.sess.FrameInto(&fr); err != nil {
		return // an undecodable frame publishes nothing; the next act retries
	}
	now := time.Now()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.seq++
	r.renders.Add(1)
	r.m.roomRenders.Add(1)
	p := &pub{seq: r.seq, tick: r.h.sess.Ticks(), at: now.UnixNano(), w: fr.W, h: fr.H, pix: fr.Pix}
	r.cur = p

	// Copy the event delta. The events are still retained on the hosted
	// session: ack-driven compaction only trims prefixes the driver saw in
	// a reply, and every reply is assembled after this publish — so the
	// window [lastEvents, total) is always present in h.events.
	if total := r.h.eventBase + len(r.h.events); total > r.lastEvents {
		from := r.lastEvents - r.h.eventBase
		if from < 0 {
			from = 0
		}
		r.events = append(r.events, r.h.events[from:]...)
		r.lastEvents = total
		if over := len(r.events) - roomLogCap; over > 0 {
			r.events = append(r.events[:0], r.events[over:]...)
			r.eventBase += over
		}
	}
	if mc := r.h.sess.MessageCount(); mc > r.lastMsgs {
		r.messages = append(r.messages, r.h.sess.MessagesFrom(r.lastMsgs)...)
		r.lastMsgs = mc
		if over := len(r.messages) - roomLogCap; over > 0 {
			r.messages = append(r.messages[:0], r.messages[over:]...)
			r.msgBase += over
		}
	}
	if q, ok := r.h.sess.PendingQuiz(); ok {
		r.quiz = q.ID
		if r.tallies[q.ID] == nil {
			r.tallies[q.ID] = &tally{correct: q.Answer, votes: make([]int, len(q.Choices)), byID: map[string]int{}}
		}
	} else {
		r.quiz = ""
	}

	var droppedHere int64
	for _, w := range r.watchers {
		if w.push(p) {
			droppedHere++
		}
	}
	r.mu.Unlock()
	if droppedHere > 0 {
		r.skipped.Add(droppedHere)
		r.m.roomSkipped.Add(droppedHere)
	}
}

// close marks the room dead and wakes every blocked poll. Called when the
// driven session leaves, is evicted, or freezes for handoff (rooms are
// live-only: the driver session survives in the snapshot store, the
// watcher fan-out state does not).
func (r *Room) close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	ws := make([]*watcher, 0, len(r.watchers))
	for _, w := range r.watchers {
		ws = append(ws, w)
	}
	r.watchers = map[string]*watcher{}
	r.mu.Unlock()
	for _, w := range ws {
		w.mu.Lock()
		w.gone = true
		w.mu.Unlock()
		w.wake()
	}
}

// join registers a watcher (idempotent per id: a retried join reattaches).
func (r *Room) join(watcherID string) (*watcher, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, errf(http.StatusNotFound, "playsvc: no room %q", r.id)
	}
	if w := r.watchers[watcherID]; w != nil {
		w.lastSeen.Store(time.Now().UnixNano())
		return w, nil
	}
	if len(r.watchers) >= roomWatcherCap {
		return nil, errf(http.StatusServiceUnavailable, "playsvc: room %q watcher cap (%d) reached", r.id, roomWatcherCap)
	}
	w := &watcher{id: watcherID, notify: make(chan struct{}, 1)}
	w.lastSeen.Store(time.Now().UnixNano())
	if r.cur != nil {
		// The newest publication seeds the ring so a joiner's first poll
		// returns immediately instead of waiting out a quiet classroom.
		w.push(r.cur)
	}
	r.watchers[watcherID] = w
	r.m.watcherJoins.Add(1)
	return w, nil
}

// leave unsubscribes a watcher (idempotent).
func (r *Room) leave(watcherID string) {
	r.mu.Lock()
	w := r.watchers[watcherID]
	delete(r.watchers, watcherID)
	r.mu.Unlock()
	if w != nil {
		w.mu.Lock()
		w.gone = true
		w.mu.Unlock()
		w.wake()
	}
}

// lookupWatcher resolves a live subscription.
func (r *Room) lookupWatcher(watcherID string) (*watcher, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, errf(http.StatusNotFound, "playsvc: no room %q", r.id)
	}
	w := r.watchers[watcherID]
	if w == nil {
		return nil, errf(http.StatusNotFound, "playsvc: room %q has no watcher %q", r.id, watcherID)
	}
	return w, nil
}

// WatchNext blocks until a publication is pending for the watcher (or wait
// elapses) and encodes it as one watch chunk: the length-prefixed header —
// sequence, tick, geometry, skip count, and the event/message tails beyond
// the caller's seen-counts — appended into dst, plus the shared immutable
// pixel payload, returned separately so the caller concatenates the two
// writes without copying the frame. latest skips the ring to the newest
// entry (the long-poll policy); streams pass false and drain in order.
//
// A nil header with a nil error means the wait timed out with nothing new
// (the HTTP layer answers 204). dst is reused across calls — steady-state
// delivery allocates nothing per watcher. ackEvents/ackMessages are the
// absolute event/message totals the chunk carries — the seen-counts the
// next call should present (streaming handlers advance them server-side).
func (r *Room) WatchNext(watcherID string, seenEvents, seenMessages int, latest bool, wait time.Duration, dst []byte) (header, pix []byte, ackEvents, ackMessages int, err error) {
	w, err := r.lookupWatcher(watcherID)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	now := time.Now()
	w.lastSeen.Store(now.UnixNano())
	p, skips, delta, gone := w.pop(latest)
	if p == nil && !gone && wait > 0 {
		if wait > maxWatchWait {
			wait = maxWatchWait
		}
		deadline := time.NewTimer(wait)
		defer deadline.Stop()
		for p == nil && !gone {
			select {
			case <-w.notify:
				p, skips, delta, gone = w.pop(latest)
			case <-deadline.C:
				p, skips, delta, gone = w.pop(latest)
				if p == nil {
					gone = true // stop waiting; distinguished below
				}
			}
		}
		if p == nil {
			// Re-check liveness: a timeout on a live subscription is a
			// clean 204; a closed room is a 404.
			if _, err := r.lookupWatcher(watcherID); err != nil {
				return nil, nil, 0, 0, err
			}
			return nil, nil, seenEvents, seenMessages, nil
		}
	}
	if p == nil {
		if gone {
			return nil, nil, 0, 0, errf(http.StatusNotFound, "playsvc: room %q has no watcher %q", r.id, watcherID)
		}
		return nil, nil, seenEvents, seenMessages, nil
	}
	r.delivered.Add(1)
	r.m.roomDelivered.Add(1)
	r.m.fanoutNs.Observe(time.Now().UnixNano() - p.at)
	r.m.skipHist.Observe(delta)

	r.mu.Lock()
	tails := watchTails{
		eventBase:    r.eventBase,
		events:       r.events,
		eventCount:   r.eventBase + len(r.events),
		msgBase:      r.msgBase,
		messages:     r.messages,
		messageCount: r.msgBase + len(r.messages),
		quiz:         r.quiz,
	}
	header = appendWatchChunk(dst, p, skips, tails, seenEvents, seenMessages)
	r.mu.Unlock()
	return header, p.pix, tails.eventCount, tails.messageCount, nil
}

// answer records one watcher's quiz answer. Re-answering moves the vote
// (last answer wins); only the first answer counts toward the answer
// totals. The driven session is untouched — cohort answers are assessment
// data, not game acts; the driver answers the session's quiz through the
// act path as usual.
func (r *Room) answer(watcherID, quizID string, choice int) (*RoomAnswerReply, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, errf(http.StatusNotFound, "playsvc: no room %q", r.id)
	}
	w := r.watchers[watcherID]
	if w == nil {
		return nil, errf(http.StatusNotFound, "playsvc: room %q has no watcher %q", r.id, watcherID)
	}
	w.lastSeen.Store(time.Now().UnixNano())
	t := r.tallies[quizID]
	if t == nil {
		return nil, errf(http.StatusNotFound, "playsvc: room %q has no quiz %q", r.id, quizID)
	}
	if choice < 0 || choice >= len(t.votes) {
		return nil, errf(http.StatusBadRequest, "playsvc: quiz %q has no choice %d", quizID, choice)
	}
	if prev, ok := t.byID[watcherID]; ok {
		t.votes[prev]--
	} else {
		r.answers.Add(1)
		r.m.roomAnswers.Add(1)
	}
	t.byID[watcherID] = choice
	t.votes[choice]++
	return &RoomAnswerReply{
		Room:    r.id,
		Quiz:    quizID,
		Correct: choice == t.correct,
		Answers: len(t.byID),
		Votes:   append([]int(nil), t.votes...),
	}, nil
}

// isClosed reports whether the room's driven session is gone.
func (r *Room) isClosed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

// watcherCount is the current subscription count.
func (r *Room) watcherCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.watchers)
}

// pruneWatchers drops subscriptions idle since before the cutoff (a
// watcher that stopped polling without a leave). Returns how many fell.
func (r *Room) pruneWatchers(cutoff int64) int {
	r.mu.Lock()
	var victims []*watcher
	for id, w := range r.watchers {
		if w.lastSeen.Load() < cutoff {
			victims = append(victims, w)
			delete(r.watchers, id)
		}
	}
	r.mu.Unlock()
	for _, w := range victims {
		w.mu.Lock()
		w.gone = true
		w.mu.Unlock()
		w.wake()
	}
	return len(victims)
}

// stats snapshots the room's counters and cohort tallies.
func (r *Room) stats() RoomStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RoomStats{
		Room:      r.id,
		Watchers:  len(r.watchers),
		Seq:       r.seq,
		Renders:   r.renders.Load(),
		Delivered: r.delivered.Load(),
		Skipped:   r.skipped.Load(),
		Answers:   r.answers.Load(),
		Quiz:      r.quiz,
	}
	if r.cur != nil {
		st.Tick = r.cur.tick
	}
	for id, t := range r.tallies {
		qt := RoomQuizTally{Quiz: id, Answers: len(t.byID), Votes: append([]int(nil), t.votes...)}
		if t.correct >= 0 && t.correct < len(t.votes) {
			qt.Correct = t.votes[t.correct]
		}
		st.Quizzes = append(st.Quizzes, qt)
	}
	return st
}
