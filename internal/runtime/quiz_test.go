package runtime

import (
	"strings"
	"testing"
)

func TestQuizFlowThroughSession(t *testing.T) {
	s, rec := classroomSession(t)
	if _, ok := s.PendingQuiz(); ok {
		t.Fatal("quiz pending before any trigger")
	}
	// Examining the computer asks the diagnosis quiz.
	s.Examine("computer")
	quiz, ok := s.PendingQuiz()
	if !ok || quiz.ID != "q-diagnosis" {
		t.Fatalf("pending quiz = %v, %v", quiz, ok)
	}
	// Wrong answer id / out-of-range choice rejected.
	if _, err := s.AnswerQuiz("q-shopping", 0); err == nil {
		t.Error("answered a quiz that is not pending")
	}
	if _, err := s.AnswerQuiz("q-diagnosis", 99); err == nil {
		t.Error("out-of-range choice accepted")
	}
	// Correct answer scores points and reports.
	correct, err := s.AnswerQuiz("q-diagnosis", 1)
	if err != nil || !correct {
		t.Fatalf("correct answer: %v %v", correct, err)
	}
	if s.State().Vars["score"] != 10 {
		t.Fatalf("score = %d, want 10", s.State().Vars["score"])
	}
	if !strings.Contains(s.LastMessage(), "Correct") {
		t.Errorf("message = %q", s.LastMessage())
	}
	// Re-examining does not re-ask an answered quiz.
	s.Examine("computer")
	if _, ok := s.PendingQuiz(); ok {
		t.Fatal("answered quiz re-asked")
	}
	if rec.kinds()["quiz-asked"] != 1 || rec.kinds()["quiz-correct"] != 1 {
		t.Errorf("telemetry = %v", rec.kinds())
	}
}

func TestQuizWrongAnswerNoPoints(t *testing.T) {
	s, rec := classroomSession(t)
	s.Examine("computer")
	correct, err := s.AnswerQuiz("q-diagnosis", 0) // wrong
	if err != nil || correct {
		t.Fatalf("wrong answer: %v %v", correct, err)
	}
	if s.State().Vars["score"] != 0 {
		t.Fatalf("score = %d, want 0", s.State().Vars["score"])
	}
	if !strings.Contains(s.LastMessage(), "Not quite") {
		t.Errorf("message = %q", s.LastMessage())
	}
	if rec.kinds()["quiz-wrong"] != 1 {
		t.Errorf("telemetry = %v", rec.kinds())
	}
	// A wrongly answered quiz is still done: no re-ask.
	s.Examine("computer")
	if _, ok := s.PendingQuiz(); ok {
		t.Fatal("answered quiz re-asked after wrong answer")
	}
}

func TestQuizAnswerableAfterGameEnd(t *testing.T) {
	s, _ := classroomSession(t)
	s.Take("desk-coin")
	s.GotoScenario("market")
	s.Take("stall-ram")
	s.GotoScenario("classroom")
	s.UseItemOn("ram module", "computer") // ends the game, queues quizzes
	if !s.Ended() {
		t.Fatal("game should have ended")
	}
	answered := 0
	for {
		quiz, ok := s.PendingQuiz()
		if !ok {
			break
		}
		if _, err := s.AnswerQuiz(quiz.ID, quiz.Answer); err != nil {
			t.Fatal(err)
		}
		answered++
	}
	if answered != 2 { // q-shopping + q-install (no examine happened)
		t.Fatalf("answered %d post-end quizzes, want 2", answered)
	}
}
