package experiments

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"repro/internal/content"
	"repro/internal/faultnet"
	"repro/internal/fleet"
	"repro/internal/media/studio"
	"repro/internal/netstream"
	"repro/internal/playsvc"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// E16 is the resilience experiment: the same interactive classroom fleet
// against the same 3-node cluster, run once per network condition —
// clean, wifi-flaky (a few percent of requests dropped, reset or turned
// into 503s), and partition (the network vanishes for 400ms out of every
// 2s). Both the fleet→gateway and gateway→node paths cross the injector.
// The point is the price of survival: every run must finish with zero
// failed learners and exact telemetry accounting, and the table shows
// what the retries, rescues and breaker trips cost in throughput.
func E16(learners int) (string, error) {
	if learners <= 0 {
		learners = 100
	}
	blob, err := content.Classroom().BuildPackage(studio.Options{QStep: 10})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("E16 — surviving bad networks: one fleet, three conditions\n")
	fmt.Fprintf(&b, "%d interactive learners through a 3-node cluster; every HTTP hop\n", learners)
	b.WriteString("(fleet→gateway, fleet→server, gateway→node) crosses a seeded fault\n")
	b.WriteString("injector; the stack's retries/breakers/rescues must absorb it all\n\n")
	fmt.Fprintf(&b, "%-12s %10s %7s %7s %9s %9s %8s %8s %7s\n",
		"profile", "sess/s", "done", "failed", "injected", "retries", "rescues", "recovers", "trips")

	for _, name := range []string{"clean", "wifi-flaky", "partition"} {
		profile, ok := faultnet.Lookup(name)
		if !ok {
			return "", fmt.Errorf("unknown profile %q", name)
		}
		row, err := e16Run(blob, profile, learners)
		if err != nil {
			return "", fmt.Errorf("profile %s: %w", name, err)
		}
		b.WriteString(row)
	}
	b.WriteString("\nzero failed learners in every row: the injected drops, resets,\n")
	b.WriteString("503s and outages cost throughput, never sessions or telemetry.\n")
	return b.String(), nil
}

// e16Run drives one fleet through one fault profile and formats the
// resilience counters as a table row.
func e16Run(blob []byte, profile faultnet.Profile, learners int) (string, error) {
	srv := netstream.NewServer()
	if err := srv.AddPackage("classroom", blob); err != nil {
		return "", err
	}
	svc := telemetry.NewService(telemetry.Options{Workers: 8, QueueDepth: 256})
	defer svc.Close()
	if err := srv.Mount("/telemetry/", svc.Handler()); err != nil {
		return "", err
	}
	front := httptest.NewServer(srv)
	defer front.Close()

	// The gateway's backend hops ride their own injected transport so the
	// breakers see real faults; a separate seed keeps the two fault
	// streams uncorrelated, exactly like the chaos gate.
	gwTr := faultnet.NewTransport(faultnet.NewHTTPTransport(64), profile, 7)
	cl, err := playsvc.NewCluster(playsvc.ClusterOptions{
		HTTP: &http.Client{Transport: gwTr},
		Node: playsvc.Options{Shards: 8, TTL: -1, CheckpointEvery: 50 * time.Millisecond},
	})
	if err != nil {
		return "", err
	}
	defer cl.Close()
	if err := cl.AddCourse("classroom", blob); err != nil {
		return "", err
	}
	for i := 0; i < 3; i++ {
		if _, err := cl.StartNode(); err != nil {
			return "", err
		}
	}
	gw := httptest.NewServer(cl.Gateway().Handler())
	defer gw.Close()

	fleetTr := faultnet.NewTransport(faultnet.NewHTTPTransport(64), profile, 11)
	sum, err := fleet.Run(fleet.Config{
		ServerURL:   front.URL,
		PlayURL:     gw.URL,
		Package:     "classroom",
		Learners:    learners,
		Concurrency: 64,
		Interactive: true,
		Policy:      sim.GuidedFactory,
		Sim:         sim.Config{MaxSteps: 12, TicksPerStep: 1, Patience: 30, WatchEvery: 4},
		FlushEvery:  8,
		HTTP:        &http.Client{Transport: fleetTr},
	})
	if err != nil {
		return "", err
	}
	if !svc.Quiesce(30 * time.Second) {
		return "", fmt.Errorf("ingest queues did not drain")
	}
	cs := svc.Store().Snapshot()["classroom"]
	if cs.SessionsStarted != learners || cs.SessionsEnded != learners || cs.LiveSessions != 0 {
		return "", fmt.Errorf("telemetry accounting skewed: %+v", cs)
	}

	gs := cl.Gateway().Stats()
	gwSt, flSt := gwTr.Stats(), fleetTr.Stats()
	injected := gwSt.Drops + gwSt.Resets + gwSt.Errors + gwSt.Outages +
		flSt.Drops + flSt.Resets + flSt.Errors + flSt.Outages
	return fmt.Sprintf("%-12s %10.1f %7d %7d %9d %9d %8d %8d %7d\n",
		profile.Name, sum.SessionsPerSec, sum.Completed, sum.Failed, injected,
		gs.Retries, gs.Rescues, gs.Recoveries, gs.BreakerTrips), nil
}
