package vcodec

import (
	"fmt"
	"sync"

	"repro/internal/media/raster"
)

// FrameType distinguishes intra frames (random-access points) from
// predicted frames.
type FrameType uint8

// Frame types.
const (
	IFrame FrameType = 0 // self-contained; decoding can start here
	PFrame FrameType = 1 // predicted from the previous frame
)

// String returns "I" or "P".
func (t FrameType) String() string {
	if t == IFrame {
		return "I"
	}
	return "P"
}

// Block coding modes inside P-frames.
const (
	modeSkip  = 0 // copy the co-located reference block
	modeIntra = 1 // DCT-coded samples (also the only mode in I-frames)
	modeMC    = 2 // motion vector + DCT-coded residual
)

const magic = "TKV1"

// Config parameterizes an Encoder.
type Config struct {
	Width, Height int
	QStep         int // quantizer step; larger = smaller & worse. Sane range 2..32.
	GOP           int // I-frame interval; every GOP-th frame is intra. >= 1.
	SearchRange   int // motion search radius in pixels (0..7). 0 disables MC.
	Workers       int // parallel block-row workers; <=0 means 1
}

func (c Config) validate() error {
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("vcodec: invalid dimensions %dx%d", c.Width, c.Height)
	}
	if c.QStep < 1 || c.QStep > 128 {
		return fmt.Errorf("vcodec: qstep %d out of range [1,128]", c.QStep)
	}
	if c.GOP < 1 {
		return fmt.Errorf("vcodec: GOP %d must be >= 1", c.GOP)
	}
	if c.SearchRange < 0 || c.SearchRange > 7 {
		return fmt.Errorf("vcodec: search range %d out of range [0,7]", c.SearchRange)
	}
	return nil
}

// Packet is one encoded frame.
type Packet struct {
	Type  FrameType
	Index int // frame number in encode order
	Data  []byte
}

// Encoder compresses a sequence of equally-sized frames.
type Encoder struct {
	cfg   Config
	ref   *ycbcr // reconstructed previous frame (what the decoder will see)
	count int
}

// NewEncoder returns an encoder for the given configuration.
func NewEncoder(cfg Config) (*Encoder, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	return &Encoder{cfg: cfg}, nil
}

// Encode compresses the next frame. Frame type is chosen by the GOP setting;
// the first frame is always intra.
func (e *Encoder) Encode(f *raster.Frame) (Packet, error) {
	if f.W != e.cfg.Width || f.H != e.cfg.Height {
		return Packet{}, fmt.Errorf("vcodec: frame size %dx%d does not match config %dx%d",
			f.W, f.H, e.cfg.Width, e.cfg.Height)
	}
	ft := PFrame
	if e.ref == nil || e.count%e.cfg.GOP == 0 {
		ft = IFrame
	}
	img := toYCbCr(f)
	recon := &ycbcr{
		y:  newPlane(img.y.w, img.y.h),
		cb: newPlane(img.cb.w, img.cb.h),
		cr: newPlane(img.cr.w, img.cr.h),
		w:  img.w, h: img.h,
	}
	var w byteWriter
	w.bytes([]byte(magic))
	w.u8(uint8(ft))
	w.uvarint(uint64(img.w))
	w.uvarint(uint64(img.h))
	w.uvarint(uint64(e.cfg.QStep))
	w.u8(uint8(e.cfg.SearchRange))
	var refY, refCb, refCr *plane
	if ft == PFrame {
		refY, refCb, refCr = e.ref.y, e.ref.cb, e.ref.cr
	}
	e.encodePlane(&w, img.y, refY, recon.y, e.cfg.SearchRange)
	e.encodePlane(&w, img.cb, refCb, recon.cb, e.cfg.SearchRange/2)
	e.encodePlane(&w, img.cr, refCr, recon.cr, e.cfg.SearchRange/2)
	e.ref = recon
	p := Packet{Type: ft, Index: e.count, Data: w.buf}
	e.count++
	return p, nil
}

// Reset drops the reference frame so the next frame becomes an I-frame.
func (e *Encoder) Reset() {
	e.ref = nil
	e.count = 0
}

// encodePlane codes one plane as independent block rows (parallel across
// workers) and writes a row-length table so the decoder can parallelize too.
func (e *Encoder) encodePlane(w *byteWriter, src, ref, recon *plane, searchRange int) {
	rows := src.h / blockSize
	chunks := make([][]byte, rows)
	work := make(chan int)
	var wg sync.WaitGroup
	nw := e.cfg.Workers
	if nw > rows {
		nw = rows
	}
	for i := 0; i < nw; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for by := range work {
				chunks[by] = encodeBlockRow(src, ref, recon, by, e.cfg.QStep, searchRange)
			}
		}()
	}
	for by := 0; by < rows; by++ {
		work <- by
	}
	close(work)
	wg.Wait()
	w.uvarint(uint64(rows))
	for _, c := range chunks {
		w.uvarint(uint64(len(c)))
	}
	for _, c := range chunks {
		w.bytes(c)
	}
}

// encodeBlockRow codes all blocks with top edge at by*blockSize, writing
// reconstructed samples into recon (its rows are disjoint across calls).
func encodeBlockRow(src, ref, recon *plane, by, qstep, searchRange int) []byte {
	var w byteWriter
	var cur, res, coefs, rec [64]float64
	var levels, levelsI [64]int32
	y0 := by * blockSize
	for x0 := 0; x0 < src.w; x0 += blockSize {
		loadBlock(src, x0, y0, &cur)
		// Intra candidate.
		for i := range cur {
			res[i] = cur[i] - 128
		}
		fdct8x8(&res, &coefs)
		quantize(&coefs, qstep, &levelsI)
		intraCost := codeCost(&levelsI)
		if ref == nil {
			writeIntraBlock(&w, src, recon, x0, y0, qstep, &levelsI, &rec)
			continue
		}
		// Motion search (includes the (0,0) candidate even when range is 0).
		mvx, mvy := motionSearch(src, ref, x0, y0, searchRange)
		loadBlockOffset(ref, x0+mvx, y0+mvy, &res)
		for i := range res {
			res[i] = cur[i] - res[i]
		}
		fdct8x8(&res, &coefs)
		quantizeDeadzone(&coefs, qstep, &levels)
		mcCost := codeCost(&levels) + 1 // +1 byte for the motion vector
		if allZero(&levels) && mvx == 0 && mvy == 0 {
			// Residual vanishes at this quantizer: perfect skip.
			w.u8(modeSkip)
			copyBlock(ref, recon, x0, y0)
			continue
		}
		if mcCost <= intraCost {
			w.u8(modeMC)
			w.u8(packMV(mvx, mvy))
			writeLevels(&w, &levels)
			reconstructMC(ref, recon, x0, y0, mvx, mvy, qstep, &levels, &rec)
			continue
		}
		writeIntraBlock(&w, src, recon, x0, y0, qstep, &levelsI, &rec)
	}
	return w.buf
}

func writeIntraBlock(w *byteWriter, src, recon *plane, x0, y0, qstep int, levels *[64]int32, rec *[64]float64) {
	w.u8(modeIntra)
	writeLevels(w, levels)
	var coefs [64]float64
	dequantize(levels, qstep, &coefs)
	idct8x8(&coefs, rec)
	for i := 0; i < 64; i++ {
		x, y := x0+i%blockSize, y0+i/blockSize
		recon.set(x, y, clamp255(int32(rec[i]+128.5)))
	}
}

func reconstructMC(ref, recon *plane, x0, y0, mvx, mvy, qstep int, levels *[64]int32, rec *[64]float64) {
	var coefs [64]float64
	dequantize(levels, qstep, &coefs)
	idct8x8(&coefs, rec)
	for i := 0; i < 64; i++ {
		x, y := x0+i%blockSize, y0+i/blockSize
		pred := ref.at(x+mvx, y+mvy)
		recon.set(x, y, clamp255(pred+int32(roundHalf(rec[i]))))
	}
}

func roundHalf(v float64) float64 {
	if v >= 0 {
		return float64(int32(v + 0.5))
	}
	return float64(int32(v - 0.5))
}

// motionSearch finds the full-pixel offset within ±r minimizing SAD against
// the reference, constrained so the reference block stays in bounds.
func motionSearch(src, ref *plane, x0, y0, r int) (int, int) {
	if r == 0 {
		return 0, 0
	}
	var cur [64]int32
	for i := 0; i < 64; i++ {
		cur[i] = src.at(x0+i%blockSize, y0+i/blockSize)
	}
	best, bx, by := int32(1<<30), 0, 0
	for dy := -r; dy <= r; dy++ {
		ry := y0 + dy
		if ry < 0 || ry+blockSize > ref.h {
			continue
		}
		for dx := -r; dx <= r; dx++ {
			rx := x0 + dx
			if rx < 0 || rx+blockSize > ref.w {
				continue
			}
			var sad int32
			for i := 0; i < 64 && sad < best; i++ {
				d := cur[i] - ref.at(rx+i%blockSize, ry+i/blockSize)
				if d < 0 {
					d = -d
				}
				sad += d
			}
			// Bias toward the zero vector to avoid jitter on ties.
			if dx == 0 && dy == 0 {
				sad -= 4
			}
			if sad < best {
				best, bx, by = sad, dx, dy
			}
		}
	}
	return bx, by
}

func loadBlock(p *plane, x0, y0 int, dst *[64]float64) {
	for i := 0; i < 64; i++ {
		dst[i] = float64(p.at(x0+i%blockSize, y0+i/blockSize))
	}
}

func loadBlockOffset(p *plane, x0, y0 int, dst *[64]float64) {
	for i := 0; i < 64; i++ {
		dst[i] = float64(p.at(x0+i%blockSize, y0+i/blockSize))
	}
}

func copyBlock(src, dst *plane, x0, y0 int) {
	for y := y0; y < y0+blockSize; y++ {
		copy(dst.pix[y*dst.w+x0:y*dst.w+x0+blockSize], src.pix[y*src.w+x0:y*src.w+x0+blockSize])
	}
}

// codeCost approximates the byte cost of coding the level set — enough to
// drive the intra-vs-MC mode decision.
func codeCost(levels *[64]int32) int {
	cost := 2 // mode byte + pair count
	for _, l := range levels {
		if l != 0 {
			cost += 2
			if l > 63 || l < -63 {
				cost++
			}
		}
	}
	return cost
}

func allZero(levels *[64]int32) bool {
	for _, l := range levels {
		if l != 0 {
			return false
		}
	}
	return true
}

func packMV(dx, dy int) uint8 {
	return uint8((dx+8)<<4 | (dy + 8))
}

func unpackMV(b uint8) (int, int) {
	return int(b>>4) - 8, int(b&0xF) - 8
}

// Decoder decompresses TKV1 packets. The zero Decoder is ready to use; the
// first packet it sees must be an I-frame.
type Decoder struct {
	ref     *ycbcr
	workers int
}

// NewDecoder returns a decoder that fans block-row decoding out over the
// given number of workers (<=0 means 1).
func NewDecoder(workers int) *Decoder {
	if workers <= 0 {
		workers = 1
	}
	return &Decoder{workers: workers}
}

// Reset drops decoder state (e.g. before seeking to a new I-frame).
func (d *Decoder) Reset() { d.ref = nil }

// Decode parses one packet and returns the reconstructed frame.
func (d *Decoder) Decode(data []byte) (*raster.Frame, error) {
	r := &byteReader{buf: data}
	mg, err := r.slice(4)
	if err != nil || string(mg) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	ftb, err := r.u8()
	if err != nil {
		return nil, err
	}
	ft := FrameType(ftb)
	if ft != IFrame && ft != PFrame {
		return nil, fmt.Errorf("%w: unknown frame type %d", ErrCorrupt, ftb)
	}
	wv, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	hv, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	qv, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if _, err := r.u8(); err != nil { // search range (informational)
		return nil, err
	}
	w, h, qstep := int(wv), int(hv), int(qv)
	if w <= 0 || h <= 0 || w > 1<<14 || h > 1<<14 || qstep < 1 || qstep > 128 {
		return nil, fmt.Errorf("%w: implausible header %dx%d q=%d", ErrCorrupt, w, h, qstep)
	}
	if ft == PFrame {
		if d.ref == nil {
			return nil, fmt.Errorf("vcodec: P-frame without reference (decode must start at an I-frame)")
		}
		if d.ref.w != w || d.ref.h != h {
			return nil, fmt.Errorf("%w: P-frame size %dx%d mismatches reference %dx%d", ErrCorrupt, w, h, d.ref.w, d.ref.h)
		}
	}
	img := &ycbcr{
		y:  newPlane(padUp(w), padUp(h)),
		cb: newPlane(padUp((w+1)/2), padUp((h+1)/2)),
		cr: newPlane(padUp((w+1)/2), padUp((h+1)/2)),
		w:  w, h: h,
	}
	var refY, refCb, refCr *plane
	if ft == PFrame {
		refY, refCb, refCr = d.ref.y, d.ref.cb, d.ref.cr
	}
	if err := d.decodePlane(r, img.y, refY, qstep); err != nil {
		return nil, fmt.Errorf("luma plane: %w", err)
	}
	if err := d.decodePlane(r, img.cb, refCb, qstep); err != nil {
		return nil, fmt.Errorf("cb plane: %w", err)
	}
	if err := d.decodePlane(r, img.cr, refCr, qstep); err != nil {
		return nil, fmt.Errorf("cr plane: %w", err)
	}
	d.ref = img
	return img.toFrame(), nil
}

func (d *Decoder) decodePlane(r *byteReader, dst, ref *plane, qstep int) error {
	rowsV, err := r.uvarint()
	if err != nil {
		return err
	}
	rows := int(rowsV)
	if rows != dst.h/blockSize {
		return fmt.Errorf("%w: row count %d, want %d", ErrCorrupt, rows, dst.h/blockSize)
	}
	lengths := make([]int, rows)
	for i := range lengths {
		lv, err := r.uvarint()
		if err != nil {
			return err
		}
		lengths[i] = int(lv)
	}
	chunks := make([][]byte, rows)
	for i := range chunks {
		c, err := r.slice(lengths[i])
		if err != nil {
			return err
		}
		chunks[i] = c
	}
	errs := make([]error, rows)
	work := make(chan int)
	var wg sync.WaitGroup
	nw := d.workers
	if nw > rows {
		nw = rows
	}
	for i := 0; i < nw; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for by := range work {
				errs[by] = decodeBlockRow(chunks[by], dst, ref, by, qstep)
			}
		}()
	}
	for by := 0; by < rows; by++ {
		work <- by
	}
	close(work)
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

func decodeBlockRow(chunk []byte, dst, ref *plane, by, qstep int) error {
	r := &byteReader{buf: chunk}
	var levels [64]int32
	var coefs, rec [64]float64
	y0 := by * blockSize
	for x0 := 0; x0 < dst.w; x0 += blockSize {
		mode, err := r.u8()
		if err != nil {
			return err
		}
		switch mode {
		case modeSkip:
			if ref == nil {
				return fmt.Errorf("%w: skip block in I-frame", ErrCorrupt)
			}
			copyBlock(ref, dst, x0, y0)
		case modeIntra:
			if err := readLevels(r, &levels); err != nil {
				return err
			}
			dequantize(&levels, qstep, &coefs)
			idct8x8(&coefs, &rec)
			for i := 0; i < 64; i++ {
				x, y := x0+i%blockSize, y0+i/blockSize
				dst.set(x, y, clamp255(int32(rec[i]+128.5)))
			}
		case modeMC:
			if ref == nil {
				return fmt.Errorf("%w: MC block in I-frame", ErrCorrupt)
			}
			mvb, err := r.u8()
			if err != nil {
				return err
			}
			mvx, mvy := unpackMV(mvb)
			if x0+mvx < 0 || x0+mvx+blockSize > ref.w || y0+mvy < 0 || y0+mvy+blockSize > ref.h {
				return fmt.Errorf("%w: motion vector (%d,%d) out of bounds", ErrCorrupt, mvx, mvy)
			}
			if err := readLevels(r, &levels); err != nil {
				return err
			}
			reconstructMC(ref, dst, x0, y0, mvx, mvy, qstep, &levels, &rec)
		default:
			return fmt.Errorf("%w: unknown block mode %d", ErrCorrupt, mode)
		}
	}
	if r.remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes in block row", ErrCorrupt, r.remaining())
	}
	return nil
}

// ParseHeader returns the frame type of an encoded packet without decoding
// it (the container uses this to build its seek index).
func ParseHeader(data []byte) (FrameType, error) {
	if len(data) < 5 || string(data[:4]) != magic {
		return 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	ft := FrameType(data[4])
	if ft != IFrame && ft != PFrame {
		return 0, fmt.Errorf("%w: unknown frame type %d", ErrCorrupt, data[4])
	}
	return ft, nil
}
