package telemetry

import (
	"encoding/json"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Options tunes a Service.
type Options struct {
	Shards     int // store shards (default 32)
	Workers    int // ingest workers, one queue each (default 4)
	QueueDepth int // per-worker queue bound (default 256)
	MaxBody    int // largest accepted ingest body in bytes (default 8 MiB)
	// IdleTimeout bounds memory held for abandoned sessions: a session
	// with no batch for this long is folded as-is (counted under
	// sessions_expired), and stale dedup tombstones are dropped. Default
	// 30 minutes; negative disables expiry.
	IdleTimeout time.Duration
}

func (o *Options) defaults() {
	if o.Shards <= 0 {
		o.Shards = 32
	}
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	if o.MaxBody <= 0 {
		o.MaxBody = 8 << 20
	}
	if o.IdleTimeout == 0 {
		o.IdleTimeout = 30 * time.Minute
	}
}

// Service is the ingest endpoint: it accepts event batches over HTTP,
// queues them onto bounded per-worker queues (backpressure: a full queue
// answers 429 and the client retries), and applies them to the Store on the
// worker goroutines. A session is pinned to one worker by hash, so its
// batches apply in arrival order even though workers run concurrently.
type Service struct {
	store   *Store
	queues  []chan Batch
	wg      sync.WaitGroup
	started time.Time
	maxBody int64
	shards  int
	health  *obs.Health

	closeOnce   sync.Once
	closed      atomic.Bool
	stopJanitor chan struct{}
	// closeMu makes enqueue-vs-Close safe: handlers send to the bounded
	// queues under RLock, Close closes them under Lock, so a send can never
	// hit a closed channel.
	closeMu sync.RWMutex

	handlerOnce sync.Once
	handler     http.Handler

	accepted    atomic.Int64 // batches enqueued (202)
	rejected    atomic.Int64 // batches shed (429)
	applied     atomic.Int64 // batches processed off the queues
	badRequests atomic.Int64
	applyErrors atomic.Int64 // accepted batches the store refused (gaps, rebinds)
	expired     atomic.Int64 // sessions reclaimed by the janitor

	applyDelay atomic.Int64 // test hook: ns slept per apply, to force backpressure
}

// NewService builds a service and starts its ingest workers.
func NewService(o Options) *Service {
	o.defaults()
	s := &Service{
		store:       NewStore(o.Shards),
		queues:      make([]chan Batch, o.Workers),
		started:     time.Now(),
		maxBody:     int64(o.MaxBody),
		shards:      o.Shards,
		stopJanitor: make(chan struct{}),
	}
	// The readiness payload every sibling service shares (obs.Health):
	// uptime plus ingest-specific load signals. "pending" is load-bearing —
	// the load generator's drain wait polls it.
	s.health = obs.NewHealth().
		Set("pending", func() any { return s.Pending() }).
		Set("queue_saturation", func() any { return s.QueueSaturation() }).
		Set("queues", func() any { return len(s.queues) }).
		Set("shards", func() any { return s.shards })
	for i := range s.queues {
		q := make(chan Batch, o.QueueDepth)
		s.queues[i] = q
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for b := range q {
				if d := s.applyDelay.Load(); d > 0 {
					time.Sleep(time.Duration(d))
				}
				// A refused batch (sequence gap, course rebind) still counts
				// as applied so drain accounting stays exact; the refusal is
				// surfaced in the stats snapshot.
				if err := s.store.Append(b); err != nil {
					s.applyErrors.Add(1)
				}
				s.applied.Add(1)
			}
		}()
	}
	if o.IdleTimeout > 0 {
		s.wg.Add(1)
		go s.runJanitor(o.IdleTimeout)
	}
	return s
}

// runJanitor periodically expires idle sessions (see Store.ExpireIdle).
func (s *Service) runJanitor(idle time.Duration) {
	defer s.wg.Done()
	every := idle / 4
	if every < time.Second {
		every = time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if n := s.store.ExpireIdle(time.Now().Add(-idle)); n > 0 {
				s.expired.Add(int64(n))
			}
		case <-s.stopJanitor:
			return
		}
	}
}

// Store exposes the backing store (read access for in-process reporting).
func (s *Service) Store() *Store { return s.store }

// Close stops accepting batches and drains the queues.
func (s *Service) Close() {
	s.closeOnce.Do(func() {
		close(s.stopJanitor)
		s.closeMu.Lock()
		s.closed.Store(true)
		for _, q := range s.queues {
			close(q)
		}
		s.closeMu.Unlock()
		s.wg.Wait()
	})
}

// Quiesce blocks until every accepted batch has been applied or the timeout
// elapses; it reports whether the service drained.
func (s *Service) Quiesce(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for s.applied.Load() < s.accepted.Load() {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
	return true
}

// Pending counts accepted batches not yet applied.
func (s *Service) Pending() int {
	n := s.accepted.Load() - s.applied.Load()
	if n < 0 {
		n = 0
	}
	return int(n)
}

// QueueSaturation reports the fullest ingest queue as a fraction of its
// bound, rounded to hundredths — the readiness signal for backpressure
// (1.0 means at least one queue is shedding into 429s).
func (s *Service) QueueSaturation() float64 {
	worst := 0.0
	for _, q := range s.queues {
		if c := cap(q); c > 0 {
			if f := float64(len(q)) / float64(c); f > worst {
				worst = f
			}
		}
	}
	return math.Round(worst*100) / 100
}

// queueDepth sums batches currently sitting in the ingest queues.
func (s *Service) queueDepth() int64 {
	var n int64
	for _, q := range s.queues {
		n += int64(len(q))
	}
	return n
}

// Register exposes the service's counters on a metrics registry. The
// *_total families are monotonic counters; pending and queue depth are
// gauges (they fall as workers drain).
func (s *Service) Register(reg *obs.Registry) {
	reg.CounterFunc("telemetry_batches_accepted_total", "batches enqueued (202)", s.accepted.Load)
	reg.CounterFunc("telemetry_batches_rejected_total", "batches shed by a full queue (429)", s.rejected.Load)
	reg.CounterFunc("telemetry_batches_applied_total", "batches processed off the queues", s.applied.Load)
	reg.CounterFunc("telemetry_bad_requests_total", "malformed ingest requests", s.badRequests.Load)
	reg.CounterFunc("telemetry_apply_errors_total", "accepted batches the store refused", s.applyErrors.Load)
	reg.CounterFunc("telemetry_sessions_expired_total", "sessions reclaimed by the janitor", s.expired.Load)
	reg.GaugeFunc("telemetry_pending", "accepted batches not yet applied", func() int64 { return int64(s.Pending()) })
	reg.GaugeFunc("telemetry_queue_depth", "batches sitting in the ingest queues", s.queueDepth)
	reg.GaugeFunc("telemetry_live_sessions", "sessions the store currently tracks", func() int64 {
		live := 0
		for _, cs := range s.store.Snapshot() {
			live += cs.LiveSessions
		}
		return int64(live)
	})
}

// Snapshot is the /telemetry/stats payload.
type Snapshot struct {
	UptimeSeconds   float64                `json:"uptime_seconds"`
	BatchesAccepted int64                  `json:"batches_accepted"`
	BatchesRejected int64                  `json:"batches_rejected"`
	BatchesApplied  int64                  `json:"batches_applied"`
	BadRequests     int64                  `json:"bad_requests"`
	ApplyErrors     int64                  `json:"apply_errors"`
	SessionsExpired int64                  `json:"sessions_expired"`
	Pending         int                    `json:"pending"`
	LiveSessions    int                    `json:"live_sessions"`
	TickBuckets     []int                  `json:"tick_buckets"`
	Courses         map[string]CourseStats `json:"courses"`
}

// Snapshot assembles the live service view. LiveSessions is summed from
// the per-course stats so it stays consistent with their invariant.
func (s *Service) Snapshot() Snapshot {
	courses := s.store.Snapshot()
	live := 0
	for _, cs := range courses {
		live += cs.LiveSessions
	}
	return Snapshot{
		UptimeSeconds:   time.Since(s.started).Seconds(),
		BatchesAccepted: s.accepted.Load(),
		BatchesRejected: s.rejected.Load(),
		BatchesApplied:  s.applied.Load(),
		BadRequests:     s.badRequests.Load(),
		ApplyErrors:     s.applyErrors.Load(),
		SessionsExpired: s.expired.Load(),
		Pending:         s.Pending(),
		LiveSessions:    live,
		TickBuckets:     TickBuckets(),
		Courses:         courses,
	}
}

// IngestPath, StatsPath and HealthPath are the routes Handler serves,
// matching what Client and the load generator expect.
const (
	IngestPath = "/telemetry/ingest"
	StatsPath  = "/telemetry/stats"
	HealthPath = "/healthz"
)

// Handler returns the HTTP surface: IngestPath (POST), StatsPath (GET) and
// HealthPath (GET). Mount it on a netstream.Server or any mux; repeated
// calls return the same handler.
func (s *Service) Handler() http.Handler {
	s.handlerOnce.Do(func() {
		mux := http.NewServeMux()
		mux.HandleFunc(IngestPath, s.handleIngest)
		mux.HandleFunc(StatsPath, s.handleStats)
		mux.HandleFunc(HealthPath, s.handleHealth)
		s.handler = mux
	})
	return s.handler
}

func (s *Service) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "ingest is POST-only", http.StatusMethodNotAllowed)
		return
	}
	if s.closed.Load() {
		http.Error(w, "service closing", http.StatusServiceUnavailable)
		return
	}
	var b Batch
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err := dec.Decode(&b); err != nil {
		s.badRequests.Add(1)
		http.Error(w, "bad batch: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := b.Validate(); err != nil {
		s.badRequests.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// The same session→stripe mapping as the store: one session, one
	// worker, so its batches apply in order.
	q := s.queues[SessionShardIndex(b.Session, len(s.queues))]
	s.closeMu.RLock()
	if s.closed.Load() {
		s.closeMu.RUnlock()
		http.Error(w, "service closing", http.StatusServiceUnavailable)
		return
	}
	select {
	case q <- b:
		s.closeMu.RUnlock()
		s.accepted.Add(1)
		w.WriteHeader(http.StatusAccepted)
	default:
		s.closeMu.RUnlock()
		// Bounded queue full: shed the batch and tell the client when to
		// retry. The queue just proved itself saturated, so advertise a
		// real pause — clients honor this over their own backoff.
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "ingest queue full", http.StatusTooManyRequests)
	}
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(s.Snapshot()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.health.ServeHTTP(w, r)
}
