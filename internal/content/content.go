// Package content ships the sample courseware used throughout the
// repository: the paper's §3.2 classroom computer-repair mission, a museum
// course exercising NPC dialogue and rewards, and the street scene of
// Figure 2 (the umbrella demo). Examples, figures, the simulator and the
// experiments all build on these so results are comparable everywhere.
package content

import (
	"fmt"

	"repro/internal/blobstore"
	"repro/internal/core"
	"repro/internal/gamepack"
	"repro/internal/media/container"
	"repro/internal/media/raster"
	"repro/internal/media/studio"
	"repro/internal/media/synth"
)

// Course bundles a project with the footage that backs it.
type Course struct {
	Project *core.Project
	Film    *synth.Film
	// Chapters maps project segments onto film frame ranges.
	Chapters []container.Chapter
}

// RecordVideo encodes the course footage into a TKVC blob with the course's
// segment chapters.
func (c *Course) RecordVideo(opts studio.Options) ([]byte, error) {
	opts.Chapters = c.Chapters
	return studio.Record(c.Film, opts)
}

// BuildPackage records the video and wraps everything into a .tkg package.
func (c *Course) BuildPackage(opts studio.Options) ([]byte, error) {
	video, err := c.RecordVideo(opts)
	if err != nil {
		return nil, fmt.Errorf("content: %w", err)
	}
	return gamepack.Build(c.Project, video)
}

// PublishTo records the course and deposits its package as
// content-addressed chunks into the store, returning the manifest.
// Consumers (netstream.Server.AddManifest, playsvc.AddCourseFromManifest)
// open the course from the store; the package blob itself is transient,
// and courses sharing footage share chunks.
func (c *Course) PublishTo(store *blobstore.Store, opts studio.Options) (*gamepack.Manifest, error) {
	blob, err := c.BuildPackage(opts)
	if err != nil {
		return nil, err
	}
	man, err := gamepack.DepositChunks(blob, store)
	if err != nil {
		return nil, fmt.Errorf("content: %w", err)
	}
	return man, nil
}

// SegmentNames returns the chapter names (for core.Project.Validate).
func (c *Course) SegmentNames() []string {
	names := make([]string, len(c.Chapters))
	for i, ch := range c.Chapters {
		names[i] = ch.Name
	}
	return names
}

// chaptersFromShots names each shot of the film in order. It panics when
// the name count does not match the shot count — a fixture bug.
func chaptersFromShots(f *synth.Film, names []string) []container.Chapter {
	if len(names) != len(f.Shots) {
		panic(fmt.Sprintf("content: %d names for %d shots", len(names), len(f.Shots)))
	}
	chs := make([]container.Chapter, len(names))
	for i, n := range names {
		start := f.ShotStart(i)
		chs[i] = container.Chapter{Name: n, Start: start, End: start + f.Shots[i].Frames}
	}
	return chs
}

// Classroom builds the paper's running example (§3.2): the teacher's
// computer is broken; the player examines it, finds the empty RAM slot,
// picks a coin off the desk, travels to the market, buys a module, returns
// and repairs the machine.
func Classroom() *Course {
	film := synth.FromScenes(160, 120, 10, 2007, []synth.SceneShot{
		{Kind: synth.Classroom, Seconds: 4},
		{Kind: synth.Market, Seconds: 4},
	})
	chapters := chaptersFromShots(film, []string{"seg-classroom", "seg-market"})

	p := core.NewProject("Fix The Classroom Computer")
	p.Author = "IVGBL sample content"
	p.StartScenario = "classroom"
	p.Items = []*core.ItemDef{
		{ID: "coin", Name: "Coin", Description: "Enough for one component."},
		{ID: "ram module", Name: "RAM Module", Description: "A DDR2 memory stick."},
		{ID: "scout-badge", Name: "Scout Badge", Description: "Awarded for diagnosing the fault.", Reward: true},
		{ID: "shopper-badge", Name: "Shopper Badge", Description: "Awarded for finding the right part.", Reward: true},
		{ID: "repair-badge", Name: "Repair Badge", Description: "Awarded for fixing the computer.", Reward: true},
	}
	p.Knowledge = []*core.KnowledgeUnit{
		{ID: "ram-identification", Topic: "Hardware", Description: "Recognizing an empty memory slot."},
		{ID: "hardware-shopping", Topic: "Hardware", Description: "Choosing a compatible replacement part."},
		{ID: "ram-installation", Topic: "Hardware", Description: "Seating a module in its socket."},
	}
	p.Missions = []*core.Mission{{
		ID: "fix-computer", Title: "Fix the classroom computer",
		Description: "Find out why the computer will not boot and repair it.",
		DoneFlag:    "fixed", Reward: "repair-badge", Knowledge: "ram-installation",
	}}
	p.Quizzes = []*core.Quiz{
		{
			ID:       "q-diagnosis",
			Question: "WHY DOES THE COMPUTER FAIL TO BOOT?",
			Choices:  []string{"THE SCREEN IS BROKEN", "A MEMORY MODULE IS MISSING", "IT IS UNPLUGGED"},
			Answer:   1, Knowledge: "ram-identification", Points: 10,
		},
		{
			ID:       "q-shopping",
			Question: "WHICH PART FITS THE OLD CLASSROOM MACHINE?",
			Choices:  []string{"A DDR2 MODULE", "ANY MODULE WILL DO"},
			Answer:   0, Knowledge: "hardware-shopping", Points: 10,
		},
		{
			ID:       "q-install",
			Question: "WHERE DOES THE MODULE GO?",
			Choices:  []string{"INTO THE DIMM SOCKET", "NEXT TO THE FAN", "BEHIND THE DISK"},
			Answer:   0, Knowledge: "ram-installation", Points: 20,
		},
	}
	p.InitialVars = map[string]int{"score": 0}
	p.Scenarios = []*core.Scenario{
		{
			ID: "classroom", Name: "Classroom", Segment: "seg-classroom",
			Description: "A tidy classroom; one computer refuses to boot.",
			OnEnter:     `if !flag("briefed") { setflag briefed true; say "TEACHER: The computer is dead. Please fix it!"; }`,
			Objects: []*core.Object{
				{
					ID: "teacher", Name: "Teacher", Kind: core.NPC, Enabled: true,
					Region: raster.Rect{X: 10, Y: 46, W: 18, H: 34},
					Dialogue: []string{
						"The computer stopped working this morning.",
						"The market across the street sells parts.",
					},
				},
				{
					ID: "computer", Name: "Computer", Kind: core.Hotspot, Enabled: true,
					Region:      raster.Rect{X: 96, Y: 16, W: 40, H: 30},
					Description: "A beige tower PC. The power light blinks but nothing boots.",
					Events: []core.Event{
						{Trigger: core.OnExamine, Script: `
							say "One memory slot is empty - the module is missing!";
							learn "ram-identification";
							if !flag("diagnosed") {
								setflag diagnosed true;
								reward "scout-badge";
								quiz "q-diagnosis";
							}
						`},
						{Trigger: core.OnUse, UseItem: "ram module", Script: `
							take "ram module";
							setflag fixed true;
							say "The computer boots! Mission accomplished.";
							learn "ram-installation";
							reward "repair-badge";
							set score = score + 50;
							popup "text" "WELL DONE - THE CLASS CAN WORK AGAIN";
							quiz "q-install";
							end "victory";
						`},
						{Trigger: core.OnClick, Script: `say "It will not boot. Better examine it first.";`},
					},
				},
				{
					ID: "desk-coin", Name: "Coin", Kind: core.Item, Enabled: true, Takeable: true,
					Region:      raster.Rect{X: 60, Y: 70, W: 10, H: 8},
					Sprite:      core.SpriteSpec{Shape: "coin", Color: raster.Yellow},
					Description: "Someone left a coin on the desk.",
					Events: []core.Event{
						{Trigger: core.OnTake, Script: `give "coin"; say "You pocket the coin.";`},
					},
				},
				{
					ID: "to-market", Name: "To Market", Kind: core.NavButton, Enabled: true,
					Region: raster.Rect{X: 132, Y: 96, W: 24, H: 14},
					Sprite: core.SpriteSpec{Shape: "box", Color: raster.Cyan, Label: "MARKET"},
					Events: []core.Event{
						{Trigger: core.OnClick, Script: `goto "market";`},
					},
				},
			},
		},
		{
			ID: "market", Name: "Market", Segment: "seg-market",
			Description: "A street market with an electronics stall.",
			Objects: []*core.Object{
				{
					ID: "vendor", Name: "Vendor", Kind: core.NPC, Enabled: true,
					Region: raster.Rect{X: 16, Y: 46, W: 18, H: 34},
					Dialogue: []string{
						"Memory modules! One coin apiece.",
						"Check the label: DDR2 for that old classroom machine.",
					},
				},
				{
					ID: "stall-ram", Name: "RAM Module", Kind: core.Item, Enabled: true, Takeable: true,
					Region:      raster.Rect{X: 70, Y: 62, W: 14, H: 10},
					Sprite:      core.SpriteSpec{Shape: "chip", Color: raster.Green},
					Description: "A DDR2 module on the stall. The vendor watches closely.",
					Events: []core.Event{
						{Trigger: core.OnTake, Condition: `has("coin")`, Script: `
							take "coin";
							give "ram module";
							say "VENDOR: A fine choice. That is the right type.";
							learn "hardware-shopping";
							reward "shopper-badge";
							quiz "q-shopping";
						`},
						{Trigger: core.OnClick, Script: `
							if has("ram module") {
								say "You already have the module you need.";
							} else if has("coin") {
								say "Drag the module to your backpack to buy it.";
							} else {
								say "VENDOR: No coin, no module, friend.";
							}
						`},
					},
				},
				{
					ID: "to-classroom", Name: "Back", Kind: core.NavButton, Enabled: true,
					Region: raster.Rect{X: 132, Y: 96, W: 24, H: 14},
					Sprite: core.SpriteSpec{Shape: "box", Color: raster.Cyan, Label: "BACK"},
					Events: []core.Event{
						{Trigger: core.OnClick, Script: `goto "classroom";`},
					},
				},
			},
		},
	}
	return &Course{Project: p, Film: film, Chapters: chapters}
}

// Museum builds a second course: find the curator's lost key in the
// corridor, unlock the lab, and study the exhibit — exercising enable/
// disable, multi-hop navigation and reward collection.
func Museum() *Course {
	film := synth.FromScenes(160, 120, 10, 1930, []synth.SceneShot{
		{Kind: synth.Museum, Seconds: 4},
		{Kind: synth.Corridor, Seconds: 3, Fade: true},
		{Kind: synth.Lab, Seconds: 4},
	})
	chapters := chaptersFromShots(film, []string{"seg-hall", "seg-corridor", "seg-lab"})

	p := core.NewProject("Night At The Science Museum")
	p.Author = "IVGBL sample content"
	p.StartScenario = "hall"
	p.Items = []*core.ItemDef{
		{ID: "brass key", Name: "Brass Key", Description: "Opens the lab door."},
		{ID: "finder-badge", Name: "Finder Badge", Description: "Awarded for recovering the lost key.", Reward: true},
		{ID: "scholar-badge", Name: "Scholar Badge", Description: "Awarded for completing the exhibit study.", Reward: true},
	}
	p.Knowledge = []*core.KnowledgeUnit{
		{ID: "electricity-basics", Topic: "Physics", Description: "The Van de Graaff generator."},
		{ID: "lab-safety", Topic: "Physics", Description: "Rules before touching equipment."},
		{ID: "observation", Topic: "Method", Description: "Careful observation finds hidden things."},
	}
	p.Missions = []*core.Mission{{
		ID: "study-exhibit", Title: "Study the generator",
		Description: "Unlock the lab and study the Van de Graaff exhibit.",
		DoneFlag:    "studied", Reward: "scholar-badge", Knowledge: "electricity-basics",
	}}
	p.Quizzes = []*core.Quiz{
		{
			ID:       "q-electricity",
			Question: "WHAT ACCUMULATES ON THE GENERATOR DOME?",
			Choices:  []string{"ELECTRIC CHARGE", "WATER VAPOR", "MAGNETISM"},
			Answer:   0, Knowledge: "electricity-basics", Points: 20,
		},
		{
			// Asked at the finale regardless of whether the learner ever
			// studied the painting — learners who skipped it answer at
			// chance level, which is what lets E6 separate strategies.
			ID:       "q-observation",
			Question: "WHOSE PORTRAIT HANGS IN THE MAIN HALL?",
			Choices:  []string{"NEWTON", "FARADAY", "TESLA", "CURIE"},
			Answer:   1, Knowledge: "observation", Points: 10,
		},
	}
	p.Scenarios = []*core.Scenario{
		{
			ID: "hall", Name: "Main Hall", Segment: "seg-hall",
			OnEnter: `if !flag("welcomed") { setflag welcomed true; say "CURATOR: I lost the lab key somewhere in the corridor..."; }`,
			Objects: []*core.Object{
				{
					ID: "curator", Name: "Curator", Kind: core.NPC, Enabled: true,
					Region: raster.Rect{X: 14, Y: 46, W: 18, H: 34},
					Dialogue: []string{
						"The lab holds our best exhibit.",
						"I dropped the brass key in the corridor, I am sure of it.",
					},
				},
				{
					ID: "painting", Name: "Old Painting", Kind: core.Hotspot, Enabled: true,
					Region:      raster.Rect{X: 100, Y: 14, W: 30, H: 24},
					Description: "A portrait of Michael Faraday.",
					Events: []core.Event{
						{Trigger: core.OnExamine, Script: `say "Faraday watches over the hall."; learn "observation";`},
					},
				},
				{
					ID: "to-corridor", Name: "Corridor", Kind: core.NavButton, Enabled: true,
					Region: raster.Rect{X: 132, Y: 96, W: 24, H: 14},
					Sprite: core.SpriteSpec{Shape: "box", Color: raster.Cyan, Label: "GO"},
					Events: []core.Event{{Trigger: core.OnClick, Script: `goto "corridor";`}},
				},
			},
		},
		{
			ID: "corridor", Name: "Corridor", Segment: "seg-corridor",
			Objects: []*core.Object{
				{
					ID: "floor-key", Name: "Brass Key", Kind: core.Item, Enabled: true, Takeable: true,
					Region:      raster.Rect{X: 84, Y: 74, W: 10, H: 6},
					Sprite:      core.SpriteSpec{Shape: "box", Color: raster.Yellow},
					Description: "A small brass key glinting on the floor.",
					Events: []core.Event{
						{Trigger: core.OnTake, Script: `give "brass key"; say "Found the curator's key!"; learn "observation"; reward "finder-badge";`},
					},
				},
				{
					ID: "lab-door", Name: "Lab Door", Kind: core.Hotspot, Enabled: true,
					Region:      raster.Rect{X: 36, Y: 30, W: 22, H: 44},
					Description: "A heavy door labeled LABORATORY.",
					Events: []core.Event{
						{Trigger: core.OnUse, UseItem: "brass key", Script: `
							say "The lock turns smoothly.";
							setflag lab-open true;
							goto "lab";
						`},
						{Trigger: core.OnClick, Script: `
							if flag("lab-open") { goto "lab"; } else { say "Locked. The curator mentioned a key."; }
						`},
					},
				},
				{
					ID: "to-hall", Name: "Back", Kind: core.NavButton, Enabled: true,
					Region: raster.Rect{X: 132, Y: 96, W: 24, H: 14},
					Sprite: core.SpriteSpec{Shape: "box", Color: raster.Cyan, Label: "BACK"},
					Events: []core.Event{{Trigger: core.OnClick, Script: `goto "hall";`}},
				},
			},
		},
		{
			ID: "lab", Name: "Laboratory", Segment: "seg-lab",
			OnEnter: `if !flag("safety") { setflag safety true; say "A sign reads: OBSERVE, DO NOT TOUCH."; learn "lab-safety"; }`,
			Objects: []*core.Object{
				{
					ID: "generator", Name: "Van de Graaff Generator", Kind: core.Hotspot, Enabled: true,
					Region:      raster.Rect{X: 70, Y: 24, W: 30, H: 44},
					Description: "A tall generator with a gleaming dome.",
					Events: []core.Event{
						{Trigger: core.OnExamine, Script: `
							say "Charge accumulates on the dome - static electricity at work.";
							learn "electricity-basics";
							setflag studied true;
							reward "scholar-badge";
							popup "text" "EXHIBIT STUDY COMPLETE";
							quiz "q-electricity";
							quiz "q-observation";
							end "victory";
						`},
					},
				},
				{
					ID: "to-corridor-2", Name: "Back", Kind: core.NavButton, Enabled: true,
					Region: raster.Rect{X: 132, Y: 96, W: 24, H: 14},
					Sprite: core.SpriteSpec{Shape: "box", Color: raster.Cyan, Label: "BACK"},
					Events: []core.Event{{Trigger: core.OnClick, Script: `goto "corridor";`}},
				},
			},
		},
	}
	return &Course{Project: p, Film: film, Chapters: chapters}
}

// StreetDemo reproduces the situation in the paper's Figure 2: a street
// scene with an umbrella image object (white background) mounted on the
// video frame, an inventory window below, and buttons that switch segments
// or open a website.
func StreetDemo() *Course {
	film := synth.FromScenes(160, 120, 10, 77, []synth.SceneShot{
		{Kind: synth.Street, Seconds: 4},
		{Kind: synth.Corridor, Seconds: 3},
	})
	chapters := chaptersFromShots(film, []string{"seg-street", "seg-indoors"})

	p := core.NewProject("Umbrella Demo")
	p.Author = "IVGBL sample content"
	p.StartScenario = "street"
	p.Items = []*core.ItemDef{
		{ID: "umbrella", Name: "Umbrella", Description: "A red umbrella someone left behind."},
	}
	p.Knowledge = []*core.KnowledgeUnit{
		{ID: "weather-prep", Topic: "Daily Life", Description: "Being prepared for rain."},
	}
	p.Scenarios = []*core.Scenario{
		{
			ID: "street", Name: "Street", Segment: "seg-street",
			Objects: []*core.Object{
				{
					ID: "umbrella", Name: "Umbrella", Kind: core.Item, Enabled: true, Takeable: true,
					Region:      raster.Rect{X: 64, Y: 56, W: 18, H: 22},
					Sprite:      core.SpriteSpec{Shape: "umbrella", Color: raster.Red},
					Description: "A red umbrella. Looks sturdy.",
					Events: []core.Event{
						{Trigger: core.OnTake, Script: `give "umbrella"; say "Into the backpack it goes."; learn "weather-prep";`},
						{Trigger: core.OnExamine, Script: `say "A red umbrella with a wooden handle.";`},
					},
				},
				{
					ID: "info-btn", Name: "Info", Kind: core.NavButton, Enabled: true,
					Region: raster.Rect{X: 6, Y: 96, W: 22, H: 14},
					Sprite: core.SpriteSpec{Shape: "box", Color: raster.Yellow, Label: "INFO"},
					Events: []core.Event{
						{Trigger: core.OnClick, Script: `open "http://course.example/umbrella";`},
					},
				},
				{
					ID: "go-indoors", Name: "Indoors", Kind: core.NavButton, Enabled: true,
					Region: raster.Rect{X: 132, Y: 96, W: 24, H: 14},
					Sprite: core.SpriteSpec{Shape: "box", Color: raster.Cyan, Label: "GO IN"},
					Events: []core.Event{{Trigger: core.OnClick, Script: `goto "indoors";`}},
				},
			},
		},
		{
			ID: "indoors", Name: "Indoors", Segment: "seg-indoors",
			Objects: []*core.Object{
				{
					ID: "back-out", Name: "Outside", Kind: core.NavButton, Enabled: true,
					Region: raster.Rect{X: 132, Y: 96, W: 24, H: 14},
					Sprite: core.SpriteSpec{Shape: "box", Color: raster.Cyan, Label: "OUT"},
					Events: []core.Event{{Trigger: core.OnClick, Script: `goto "street";`}},
				},
			},
		},
	}
	return &Course{Project: p, Film: film, Chapters: chapters}
}
