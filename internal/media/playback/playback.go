// Package playback decodes TKVC containers for presentation.
//
// It provides three layers:
//
//   - Video: random access to decoded frames (seek = nearest I-frame +
//     roll-forward), the capability behind the paper's "switch to other
//     video segments" interaction (§4.3).
//   - Cursor: step-driven playback confined to one segment (scenario),
//     with loop/hold end behavior. The game runtime advances a Cursor
//     one tick at a time.
//   - Play: a real-time pipeline that prefetches decoded frames through a
//     channel and paces delivery against the wall clock.
package playback

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/media/container"
	"repro/internal/media/raster"
	"repro/internal/media/vcodec"
)

// Video is a decodable container with seek support. It is not safe for
// concurrent use; each consumer should open its own Video (the underlying
// blob is shared and read-only).
type Video struct {
	r   *container.Reader
	dec *vcodec.Decoder
	// pos is the index of the next frame the decoder would produce, or -1
	// if the decoder has no reference state yet.
	pos   int
	own   *raster.Frame // recycled frame returned by FrameAt
	cache *FrameCache   // optional shared decoded-frame cache
}

// UseCache attaches a shared decoded-frame cache. The cache must only
// ever see Videos opened from the same container blob — frame indices
// are the cache key, so mixing containers would serve wrong pixels.
func (v *Video) UseCache(c *FrameCache) { v.cache = c }

// OpenVideo parses blob and prepares a decoder with the given worker count
// (<=0 means all CPUs).
func OpenVideo(blob []byte, decodeWorkers int) (*Video, error) {
	r, err := container.Open(blob)
	if err != nil {
		return nil, err
	}
	return &Video{r: r, dec: vcodec.NewDecoder(decodeWorkers), pos: -1, own: &raster.Frame{}}, nil
}

// Close releases the decoder's worker pool promptly (a finalizer releases
// it otherwise). The Video remains usable; further decodes run inline.
func (v *Video) Close() { v.dec.Close() }

// Meta returns the container metadata.
func (v *Video) Meta() container.Meta { return v.r.Meta() }

// Chapters returns the container's chapter (segment) table.
func (v *Video) Chapters() []container.Chapter { return v.r.Chapters() }

// ChapterByName looks up a chapter.
func (v *Video) ChapterByName(name string) (container.Chapter, bool) {
	return v.r.ChapterByName(name)
}

// FrameAt decodes and returns frame i, seeking if necessary. Sequential
// reads (i == previous+1) cost one decode; backward seeks or jumps restart
// from the nearest preceding I-frame, and roll-forward frames skip the RGB
// conversion entirely.
//
// The returned frame is owned by the Video and recycled by the next FrameAt
// call; Clone it to retain pixels across calls.
func (v *Video) FrameAt(i int) (*raster.Frame, error) {
	if err := v.frameAtInto(v.own, i); err != nil {
		return nil, err
	}
	return v.own, nil
}

// frameAtInto is FrameAt decoding into a caller-provided frame.
func (v *Video) frameAtInto(dst *raster.Frame, i int) error {
	n := v.r.Meta().FrameCount
	if i < 0 || i >= n {
		return fmt.Errorf("playback: frame %d out of range [0,%d)", i, n)
	}
	// A cache hit bypasses the decoder entirely and leaves its reference
	// state (v.pos) untouched: the next miss rolls forward from wherever
	// the decoder actually is, exactly as if this call never happened.
	if v.cache.get(i, dst) {
		return nil
	}
	start := v.pos
	if v.pos == -1 || i < v.pos {
		k, err := v.r.KeyframeAtOrBefore(i)
		if err != nil {
			return err
		}
		v.dec.Reset()
		start = k
	} else if i > v.pos {
		// Rolling forward: if there is a keyframe between pos and i, jumping
		// to it skips useless decodes.
		k, err := v.r.KeyframeAtOrBefore(i)
		if err != nil {
			return err
		}
		if k > v.pos {
			v.dec.Reset()
			start = k
		}
	}
	for j := start; j <= i; j++ {
		data, _, err := v.r.PacketAt(j)
		if err != nil {
			v.invalidate()
			return err
		}
		if j < i {
			// Roll-forward frames are never presented; advance the decoder
			// reference without converting to RGB.
			err = v.dec.Advance(data)
		} else {
			err = v.dec.DecodeInto(dst, data)
		}
		if err != nil {
			// The decoder reference may have advanced past v.pos before the
			// failure; drop both so the next call re-seeks from a keyframe
			// instead of predicting against the wrong reference.
			v.invalidate()
			return fmt.Errorf("playback: decoding frame %d: %w", j, err)
		}
	}
	v.pos = i + 1
	v.cache.put(i, dst)
	return nil
}

// invalidate forgets the decode position after a failed roll, forcing the
// next FrameAt to restart from a keyframe.
func (v *Video) invalidate() {
	v.dec.Reset()
	v.pos = -1
}

// EndBehavior selects what a Cursor does at the end of its segment.
type EndBehavior int

// End behaviors.
const (
	HoldLast EndBehavior = iota // keep presenting the final frame
	Loop                        // wrap to the segment start
)

// Cursor plays one segment of a Video step by step. The zero Cursor is not
// usable; construct with NewCursor.
type Cursor struct {
	v       *Video
	seg     container.Chapter
	pos     int // current global frame index
	end     EndBehavior
	entered bool
}

// NewCursor wraps a video. Call EnterSegment (or EnterRange) before reading
// frames.
func NewCursor(v *Video, end EndBehavior) *Cursor {
	return &Cursor{v: v, end: end}
}

// EnterSegment seeks to the start of the named chapter.
func (c *Cursor) EnterSegment(name string) error {
	ch, ok := c.v.ChapterByName(name)
	if !ok {
		return fmt.Errorf("playback: no segment named %q", name)
	}
	c.seg = ch
	c.pos = ch.Start
	c.entered = true
	return nil
}

// EnterRange seeks to an explicit frame range [start, end).
func (c *Cursor) EnterRange(name string, start, end int) error {
	n := c.v.Meta().FrameCount
	if start < 0 || end > n || end <= start {
		return fmt.Errorf("playback: invalid range [%d,%d) of %d frames", start, end, n)
	}
	c.seg = container.Chapter{Name: name, Start: start, End: end}
	c.pos = start
	c.entered = true
	return nil
}

// Seek positions the cursor on an absolute frame index inside the current
// segment — the restore side of a session snapshot, which records the
// segment name plus the exact frame the player was watching.
func (c *Cursor) Seek(pos int) error {
	if !c.entered {
		return errors.New("playback: cursor has not entered a segment")
	}
	if pos < c.seg.Start || pos >= c.seg.End {
		return fmt.Errorf("playback: seek to %d outside segment [%d,%d)", pos, c.seg.Start, c.seg.End)
	}
	c.pos = pos
	return nil
}

// Segment returns the current segment.
func (c *Cursor) Segment() container.Chapter { return c.seg }

// Pos returns the current global frame index.
func (c *Cursor) Pos() int { return c.pos }

// AtEnd reports whether the cursor sits on the segment's final frame.
func (c *Cursor) AtEnd() bool { return c.entered && c.pos == c.seg.End-1 }

// Frame decodes the current frame. Like FrameAt, the returned frame is
// recycled by the next decode on the underlying Video.
func (c *Cursor) Frame() (*raster.Frame, error) {
	if !c.entered {
		return nil, errors.New("playback: cursor has not entered a segment")
	}
	return c.v.FrameAt(c.pos)
}

// Advance moves to the next frame within the segment. At the segment end it
// loops or holds according to the end behavior; moved reports whether the
// position changed.
func (c *Cursor) Advance() (moved bool, err error) {
	if !c.entered {
		return false, errors.New("playback: cursor has not entered a segment")
	}
	if c.pos+1 < c.seg.End {
		c.pos++
		return true, nil
	}
	if c.end == Loop && c.seg.End-c.seg.Start > 1 {
		c.pos = c.seg.Start
		return true, nil
	}
	return false, nil
}

// PlayOptions configures the real-time pipeline.
type PlayOptions struct {
	Prefetch int  // decoded-frame channel depth (default 4)
	Realtime bool // pace frames against the wall clock at container FPS
}

// PlayStats reports what a Play call delivered.
type PlayStats struct {
	Frames  int           // frames delivered to the callback
	Late    int           // frames that missed their presentation deadline
	Elapsed time.Duration // wall time spent inside Play
}

// Play decodes frames [start, end) through a prefetching pipeline and hands
// each to fn. A decode goroutine runs ahead by up to Prefetch frames while
// fn (the "presentation" side) consumes. fn returning an error, or ctx
// cancellation, stops playback early.
//
// Frames handed to fn come from a recycled ring and are only valid for the
// duration of the callback; Clone to retain one.
func Play(ctx context.Context, v *Video, start, end int, opts PlayOptions, fn func(i int, f *raster.Frame) error) (PlayStats, error) {
	n := v.Meta().FrameCount
	if start < 0 || end > n || end < start {
		return PlayStats{}, fmt.Errorf("playback: invalid range [%d,%d) of %d frames", start, end, n)
	}
	if opts.Prefetch <= 0 {
		opts.Prefetch = 4
	}
	type item struct {
		i int
		f *raster.Frame
	}
	frames := make(chan item, opts.Prefetch)
	decodeErr := make(chan error, 1)
	dctx, cancel := context.WithCancel(ctx)
	// Join the decode goroutine on every exit path: it drives the Video's
	// single-goroutine decoder, so Play must not return (and hand the Video
	// back to the caller) while a decode is still in flight.
	done := make(chan struct{})
	defer func() {
		cancel()
		<-done
	}()
	// Decoded frames are recycled through a fixed ring: up to Prefetch
	// frames sit in the channel and one is with the consumer, so Prefetch+2
	// buffers guarantee the decoder never overwrites a live frame.
	ring := make([]*raster.Frame, opts.Prefetch+2)
	for k := range ring {
		ring[k] = &raster.Frame{}
	}
	go func() {
		defer close(done)
		defer close(frames)
		for i := start; i < end; i++ {
			f := ring[(i-start)%len(ring)]
			if err := v.frameAtInto(f, i); err != nil {
				decodeErr <- err
				return
			}
			select {
			case frames <- item{i, f}:
			case <-dctx.Done():
				return
			}
		}
	}()
	stats := PlayStats{}
	began := time.Now()
	frameDur := time.Second / time.Duration(v.Meta().FPS)
	next := began
	for {
		select {
		case <-ctx.Done():
			stats.Elapsed = time.Since(began)
			return stats, ctx.Err()
		case err := <-decodeErr:
			stats.Elapsed = time.Since(began)
			return stats, err
		case it, ok := <-frames:
			if !ok {
				// Drain a decode error that may have raced with close.
				select {
				case err := <-decodeErr:
					stats.Elapsed = time.Since(began)
					return stats, err
				default:
				}
				stats.Elapsed = time.Since(began)
				return stats, nil
			}
			if opts.Realtime {
				now := time.Now()
				if now.Before(next) {
					timer := time.NewTimer(next.Sub(now))
					select {
					case <-timer.C:
					case <-ctx.Done():
						timer.Stop()
						stats.Elapsed = time.Since(began)
						return stats, ctx.Err()
					}
				} else if now.Sub(next) > frameDur/2 {
					stats.Late++
				}
				next = next.Add(frameDur)
			}
			if err := fn(it.i, it.f); err != nil {
				stats.Elapsed = time.Since(began)
				return stats, err
			}
			stats.Frames++
		}
	}
}
