package vcodec

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrCorrupt is returned when a TKV1 payload fails to parse.
var ErrCorrupt = errors.New("vcodec: corrupt bitstream")

// byteWriter accumulates the encoded bitstream. It is an append-only buffer
// with varint helpers; methods never fail.
type byteWriter struct {
	buf []byte
}

func (w *byteWriter) u8(v uint8)       { w.buf = append(w.buf, v) }
func (w *byteWriter) uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *byteWriter) varint(v int64)   { w.buf = binary.AppendVarint(w.buf, v) }
func (w *byteWriter) bytes(b []byte)   { w.buf = append(w.buf, b...) }

// reset empties the writer, keeping its capacity for reuse.
func (w *byteWriter) reset() { w.buf = w.buf[:0] }

// byteReader consumes an encoded bitstream with bounds checking.
type byteReader struct {
	buf []byte
	pos int
}

func (r *byteReader) u8() (uint8, error) {
	if r.pos >= len(r.buf) {
		return 0, ErrCorrupt
	}
	v := r.buf[r.pos]
	r.pos++
	return v, nil
}

func (r *byteReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return 0, ErrCorrupt
	}
	r.pos += n
	return v, nil
}

func (r *byteReader) varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		return 0, ErrCorrupt
	}
	r.pos += n
	return v, nil
}

func (r *byteReader) slice(n int) ([]byte, error) {
	if n < 0 || r.pos+n > len(r.buf) {
		return nil, ErrCorrupt
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

func (r *byteReader) remaining() int { return len(r.buf) - r.pos }

// writeLevels run-length encodes 64 quantized levels in zigzag order:
// a sequence of (zero-run, value) pairs, each value a signed varint and each
// run a uvarint, terminated by an end-of-block marker (run=63 is impossible
// after any pair consumed at least one slot, so EOB is run value 0xFF).
//
// Layout per block: uvarint count of pairs, then count × (uvarint run,
// varint level). An all-zero block is a single 0 byte — the dominant case
// for P-frame residuals, which is what makes P-frames small.
func writeLevels(w *byteWriter, levels *[64]int32) {
	// Count pairs first.
	type pair struct {
		run   int
		level int32
	}
	var pairs [64]pair
	n := 0
	run := 0
	for i := 0; i < 64; i++ {
		if levels[i] == 0 {
			run++
			continue
		}
		pairs[n] = pair{run, levels[i]}
		n++
		run = 0
	}
	w.uvarint(uint64(n))
	for i := 0; i < n; i++ {
		w.uvarint(uint64(pairs[i].run))
		w.varint(int64(pairs[i].level))
	}
}

// readLevels reverses writeLevels.
func readLevels(r *byteReader, levels *[64]int32) error {
	for i := range levels {
		levels[i] = 0
	}
	n, err := r.uvarint()
	if err != nil {
		return err
	}
	if n > 64 {
		return fmt.Errorf("%w: %d coefficient pairs in one block", ErrCorrupt, n)
	}
	idx := 0
	for p := uint64(0); p < n; p++ {
		run, err := r.uvarint()
		if err != nil {
			return err
		}
		// Bound the run before converting: a 64-bit run would wrap int(run)
		// negative and walk off the front of the block.
		if run > 63 {
			return fmt.Errorf("%w: zero run %d out of range", ErrCorrupt, run)
		}
		lvl, err := r.varint()
		if err != nil {
			return err
		}
		idx += int(run)
		if idx >= 64 {
			return fmt.Errorf("%w: zigzag index %d out of range", ErrCorrupt, idx)
		}
		if lvl == 0 {
			return fmt.Errorf("%w: explicit zero level", ErrCorrupt)
		}
		levels[idx] = int32(lvl)
		idx++
	}
	return nil
}
