// Package telemetry ingests learner-session events at classroom and campus
// scale. The paper deploys VGBL courseware over the network (§2); once many
// learners play concurrently, lecturers need the aggregate view — how many
// sessions ran, what knowledge was delivered, how long learners persisted —
// without any single process holding every raw event log.
//
// The package has three layers:
//
//   - Store: a sharded, lock-striped event store keyed by session ID. Live
//     sessions accumulate raw runtime.Event logs; a finished session is
//     digested through the analytics package and folded into its course's
//     rolling aggregate, after which the raw log is released.
//   - Service: the HTTP ingest API (/telemetry/ingest, /telemetry/stats,
//     /healthz) with bounded per-worker queues — the backpressure surface.
//   - Client: a batching runtime.Observer that posts event batches,
//     flushing on size and on interval, retrying when the service sheds
//     load.
package telemetry

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/analytics"
	"repro/internal/runtime"
)

// Batch is the wire format of one ingest POST: a slice of one session's
// event stream, in session order. Done marks the final batch; the store
// then digests the whole session and folds it into the course aggregate.
//
// Seq is the 1-based batch index within the session. Delivery is
// at-least-once (a client must retry when the ack is lost in transit), so
// the store uses Seq to drop duplicate deliveries; a batch with Seq 0 is
// accepted without dedup (hand-posted batches).
type Batch struct {
	Course  string          `json:"course"`
	Session string          `json:"session"`
	Start   string          `json:"start,omitempty"` // start scenario, for digesting
	Seq     int             `json:"seq,omitempty"`
	Events  []runtime.Event `json:"events,omitempty"`
	Done    bool            `json:"done,omitempty"`
}

// Validate checks the fields a well-formed batch must carry.
func (b *Batch) Validate() error {
	if b.Course == "" {
		return fmt.Errorf("telemetry: batch without course")
	}
	if b.Session == "" {
		return fmt.Errorf("telemetry: batch without session")
	}
	return nil
}

// tickBuckets are the upper bounds of the session-length histogram
// (last tick ≤ bound); the final implicit bucket is unbounded.
var tickBuckets = []int{25, 50, 100, 200, 400, 800, 1600}

// TickBuckets returns the histogram bucket bounds (shared with reporting).
func TickBuckets() []int {
	return append([]int(nil), tickBuckets...)
}

// CourseStats is the aggregate view of one course, as served by
// /telemetry/stats. Counter fields are exact sums over the folded
// per-session analytics reports.
type CourseStats struct {
	Course          string `json:"course"`
	SessionsStarted int    `json:"sessions_started"`
	SessionsEnded   int    `json:"sessions_ended"` // ended by a Done batch (excludes expired)
	LiveSessions    int    `json:"live_sessions"`
	Completed       int    `json:"completed"` // reached an "end" event
	Events          int    `json:"events"`
	Decisions       int    `json:"decisions"`
	Knowledge       int    `json:"knowledge"`        // total deliveries
	UniqueKnowledge int    `json:"unique_knowledge"` // sum of per-session distinct units
	Rewards         int    `json:"rewards"`
	Ticks           int    `json:"ticks"` // sum of per-session last ticks
	// SessionsExpired counts sessions folded by idle expiry instead of a
	// Done batch. Invariant: started = ended + expired + live.
	SessionsExpired int            `json:"sessions_expired"`
	QuizAsked       int            `json:"quiz_asked"`
	QuizAnswered    int            `json:"quiz_answered"` // accuracy = quiz_correct / quiz_answered
	QuizCorrect     int            `json:"quiz_correct"`
	Outcomes        map[string]int `json:"outcomes,omitempty"`
	KnowledgeCounts map[string]int `json:"knowledge_counts,omitempty"`
	TickHist        []int          `json:"tick_hist"` // len(TickBuckets())+1 counts
}

// Store is the sharded, lock-striped session store. Session event logs are
// striped across shards by session ID so concurrent ingest workers rarely
// contend; course aggregates live in a separate small map since courses
// number in the tens while sessions number in the thousands.
type Store struct {
	shards []storeShard

	coursesMu sync.RWMutex
	courses   map[string]*courseAgg
}

type storeShard struct {
	mu       sync.Mutex
	sessions map[string]*sessionLog
}

type sessionLog struct {
	course   string
	start    string
	events   []runtime.Event
	nextSeq  int       // next expected batch Seq (for tagged batches)
	lastSeen time.Time // last Append; drives idle expiry
	folded   bool      // session digested; entry kept as a tombstone so replayed
	// deliveries of its batches are recognized and dropped
}

type courseAgg struct {
	mu       sync.Mutex
	started  int
	expired  int // sessions folded by idle expiry rather than a Done batch
	rolling  analytics.Rolling
	tickHist []int
}

// NewStore creates a store with the given shard count (default 32).
func NewStore(shards int) *Store {
	if shards <= 0 {
		shards = 32
	}
	st := &Store{
		shards:  make([]storeShard, shards),
		courses: map[string]*courseAgg{},
	}
	for i := range st.shards {
		st.shards[i].sessions = map[string]*sessionLog{}
	}
	return st
}

// SessionShardIndex is the session→stripe mapping shared by the store's
// shards and the service's worker queues. Both MUST use it: the in-order
// apply guarantee relies on one session always landing on one worker.
func SessionShardIndex(session string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(session))
	return int(h.Sum32() % uint32(n))
}

// shardFor stripes a session ID onto a shard.
func (st *Store) shardFor(session string) *storeShard {
	return &st.shards[SessionShardIndex(session, len(st.shards))]
}

// course returns (creating if needed) a course's aggregate cell.
func (st *Store) course(name string) *courseAgg {
	st.coursesMu.RLock()
	c := st.courses[name]
	st.coursesMu.RUnlock()
	if c != nil {
		return c
	}
	st.coursesMu.Lock()
	defer st.coursesMu.Unlock()
	if c = st.courses[name]; c == nil {
		c = &courseAgg{tickHist: make([]int, len(tickBuckets)+1)}
		st.courses[name] = c
	}
	return c
}

// Append applies one batch: events are appended to the session's log (a new
// session counts as started); a Done batch digests the session into an
// analytics.Report, folds it into the course aggregate and releases the raw
// log, leaving a small tombstone that absorbs replayed deliveries. Batches
// of one session must be applied in session order — the Service guarantees
// this by routing each session to a fixed worker — and duplicate deliveries
// of a Seq-tagged batch are dropped, making at-least-once delivery safe.
func (st *Store) Append(b Batch) error {
	if err := b.Validate(); err != nil {
		return err
	}
	sh := st.shardFor(b.Session)
	sh.mu.Lock()
	log, ok := sh.sessions[b.Session]
	if ok {
		if log.course != b.Course {
			sh.mu.Unlock()
			return fmt.Errorf("telemetry: session %q already bound to course %q", b.Session, log.course)
		}
		if log.folded {
			// The session was already digested; this is a replayed delivery
			// (e.g. the client re-sent its Done batch after a lost ack).
			sh.mu.Unlock()
			return nil
		}
	}
	// Sequence validation happens before any state is created or mutated,
	// so a malformed batch cannot register a phantom session or disturb an
	// existing one.
	if b.Seq > 0 {
		next := 1
		if ok {
			next = log.nextSeq
		}
		if b.Seq < next {
			sh.mu.Unlock()
			return nil // duplicate delivery of an applied batch
		}
		if b.Seq > next {
			sh.mu.Unlock()
			return fmt.Errorf("telemetry: session %q batch gap: got seq %d, want %d", b.Session, b.Seq, next)
		}
	}
	if !ok {
		log = &sessionLog{course: b.Course, start: b.Start, nextSeq: 1}
		sh.sessions[b.Session] = log
		st.course(b.Course).noteStarted()
	}
	if b.Seq > 0 {
		log.nextSeq = b.Seq + 1
	}
	log.lastSeen = time.Now()
	if log.start == "" {
		log.start = b.Start
	}
	log.events = append(log.events, b.Events...)
	if !b.Done {
		sh.mu.Unlock()
		return nil
	}
	events := log.events
	log.events = nil // tombstone keeps only the bookkeeping fields
	log.folded = true
	sh.mu.Unlock()

	// Digest outside the shard lock: folding is per-course work.
	st.digestAndFold(log.course, log.start, events, false)
	return nil
}

// digestAndFold reduces one finished (or expired) session's events to a
// report and folds it into its course aggregate.
func (st *Store) digestAndFold(course, start string, events []runtime.Event, expired bool) {
	col := &analytics.Collector{}
	for _, e := range events {
		col.Record(e)
	}
	st.course(course).fold(col.Digest(start), expired)
}

func (c *courseAgg) noteStarted() {
	c.mu.Lock()
	c.started++
	c.mu.Unlock()
}

// fold adds one digested session under a single lock acquisition; expired
// marks idle-reclaimed sessions so the started = ended + expired + live
// invariant can never be observed mid-update.
func (c *courseAgg) fold(r *analytics.Report, expired bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rolling.Add(r)
	if expired {
		c.expired++
	}
	i := 0
	for i < len(tickBuckets) && r.LastTick > tickBuckets[i] {
		i++
	}
	c.tickHist[i]++
}

// LiveSessions counts sessions with buffered events not yet folded.
func (st *Store) LiveSessions() int {
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		for _, log := range sh.sessions {
			if !log.folded {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// ExpireIdle reclaims sessions idle since before the cutoff: an unfolded
// session (its client died without sending Done) is digested as-is and
// folded into its course aggregate, counted under SessionsExpired; an
// already-folded tombstone is deleted outright — by the time a tombstone
// goes idle past the cutoff, a replayed delivery of its batches is no
// longer worth defending against. Returns how many live sessions expired.
func (st *Store) ExpireIdle(cutoff time.Time) int {
	type orphan struct {
		course string
		start  string
		events []runtime.Event
	}
	var orphans []orphan
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		for id, log := range sh.sessions {
			if !log.lastSeen.Before(cutoff) {
				continue
			}
			if log.folded {
				delete(sh.sessions, id)
				continue
			}
			orphans = append(orphans, orphan{course: log.course, start: log.start, events: log.events})
			log.events = nil
			log.folded = true
		}
		sh.mu.Unlock()
	}
	for _, o := range orphans {
		st.digestAndFold(o.course, o.start, o.events, true)
	}
	return len(orphans)
}

// Snapshot returns a copy of every course's aggregate stats. Each course's
// numbers are read under one lock, and LiveSessions is derived as
// started - ended - expired, so the invariant started = ended + expired +
// live holds in every snapshot even while ingest workers are folding.
func (st *Store) Snapshot() map[string]CourseStats {
	st.coursesMu.RLock()
	names := make([]string, 0, len(st.courses))
	for name := range st.courses {
		names = append(names, name)
	}
	st.coursesMu.RUnlock()

	out := make(map[string]CourseStats, len(names))
	for _, name := range names {
		c := st.course(name)
		c.mu.Lock()
		cs := CourseStats{
			Course:          name,
			SessionsStarted: c.started,
			SessionsEnded:   c.rolling.Sessions - c.expired,
			LiveSessions:    c.started - c.rolling.Sessions,
			Completed:       c.rolling.Completed,
			Events:          c.rolling.Events,
			Decisions:       c.rolling.Decisions,
			Knowledge:       c.rolling.Knowledge,
			UniqueKnowledge: c.rolling.UniqueKnowledge,
			Rewards:         c.rolling.Rewards,
			Ticks:           c.rolling.Ticks,
			SessionsExpired: c.expired,
			QuizAsked:       c.rolling.QuizAsked,
			QuizAnswered:    c.rolling.QuizAnswered,
			QuizCorrect:     c.rolling.QuizCorrect,
			TickHist:        append([]int(nil), c.tickHist...),
		}
		if len(c.rolling.Outcomes) > 0 {
			cs.Outcomes = make(map[string]int, len(c.rolling.Outcomes))
			for k, v := range c.rolling.Outcomes {
				cs.Outcomes[k] = v
			}
		}
		if len(c.rolling.KnowledgeCounts) > 0 {
			cs.KnowledgeCounts = make(map[string]int, len(c.rolling.KnowledgeCounts))
			for k, v := range c.rolling.KnowledgeCounts {
				cs.KnowledgeCounts[k] = v
			}
		}
		c.mu.Unlock()
		out[name] = cs
	}
	return out
}
