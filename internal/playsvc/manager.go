// Package playsvc hosts live game sessions server-side — the play service.
//
// The paper's interactive lessons are *played*, not just streamed: learners
// click objects, answer quizzes and branch between scenarios. netstream
// ships the package to the client; playsvc is the other deployment shape,
// where the runtime.Session itself lives on the server and thin clients
// drive it over HTTP (create/act/state/frame). A sharded, lock-striped
// session manager hosts thousands of concurrent sessions, evicts idle ones
// after a TTL, and exposes per-shard counters at /play/stats. Frame
// responses ride the allocation-free decode path (Decoder.DecodeInto via
// Session.FrameInto), so steady-state play allocates nothing per frame
// request.
//
// Client implements the same surface as a local session (sim.Game), so the
// simulator's policies — and the whole learner fleet — drive a remote
// session unchanged.
package playsvc

import (
	"fmt"
	"hash/fnv"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blobstore"
	"repro/internal/core"
	"repro/internal/gamepack"
	"repro/internal/media/playback"
	"repro/internal/media/raster"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// Options tunes a Manager.
type Options struct {
	Shards int // session shards (default 32)
	// TTL bounds memory held for abandoned sessions: a session with no
	// request for this long is evicted and its decode resources released.
	// Default 10 minutes; negative disables eviction.
	TTL time.Duration
	// MaxSessions caps live sessions across all shards (creates beyond it
	// answer 503). 0 means the default of 16384; negative disables the cap.
	MaxSessions int
	// DecodeWorkers is the per-session decode worker count (default 1:
	// parallelism comes from hosting many sessions, not from within one).
	DecodeWorkers int
	// FrameCacheBytes budgets the shared decoded-frame cache kept per
	// interned video buffer: sessions on the same footage render the same
	// presentation frames, so one decode serves the whole course. 0 means
	// the default of 32 MiB per video; negative disables the cache.
	FrameCacheBytes int64
	// MaxTicks bounds a single tick act (default 1000) so one request
	// cannot spin the server arbitrarily long.
	MaxTicks int
	// MaxInflight caps concurrently-executing play requests (acts, state
	// reads, frames). Requests beyond the cap are shed immediately with
	// 429 + Retry-After instead of queueing without bound — overload
	// degrades into explicit backpressure clients know how to honor.
	// 0 disables admission control.
	MaxInflight int
	// Store is the content-addressed chunk store courses can be opened
	// from (AddCourseFromManifest) — in production the same store the
	// netstream server publishes into, so the two services share segment
	// bytes. nil disables store-backed opening; AddCourse still works.
	Store *blobstore.Store
	// Dir is the snapshot directory. With both Store and Dir set, hosted
	// sessions are durable: the TTL janitor snapshots-then-evicts instead
	// of discarding, evicted and handed-off sessions thaw transparently on
	// their next request, and /play/create resume=<id> reattaches a fresh
	// client. A cluster shares one Store+Dir across all nodes. nil
	// disables durability (the seed behavior).
	Dir SnapshotDir
	// CheckpointEvery periodically snapshots every active session so a
	// crash loses at most one interval of progress. 0 disables periodic
	// checkpoints (sessions are still snapshotted on eviction and drain).
	CheckpointEvery time.Duration
	// Node names this manager in recorded trace spans — "node-3" in a
	// cluster, empty for a standalone service (spans then say "play").
	Node string
}

func (o *Options) defaults() {
	if o.Shards <= 0 {
		o.Shards = 32
	}
	if o.TTL == 0 {
		o.TTL = 10 * time.Minute
	}
	if o.MaxSessions == 0 {
		o.MaxSessions = 16384
	}
	if o.DecodeWorkers <= 0 {
		o.DecodeWorkers = 1
	}
	if o.MaxTicks <= 0 {
		o.MaxTicks = 1000
	}
}

// hosted is one server-side live session. Every session access happens
// under mu — one learner drives one session, so the lock is uncontended;
// it exists so stats, eviction and a misbehaving client cannot race the
// runtime. hosted implements runtime.Observer: each session event lands in
// its log, from which replies serve the client's unseen tail.
type hosted struct {
	id     string
	course *course

	mu   sync.Mutex
	sess *runtime.Session
	// events holds the not-yet-acknowledged tail of the session's event
	// log; eventBase is the absolute index of events[0]. The single
	// driving client acknowledges a prefix with every request
	// (seen_events), and reply trims it, so a long-lived session holds
	// O(unacked) events rather than its whole history.
	events    []runtime.Event
	eventBase int
	frame     raster.Frame // reusable frame-path buffer
	// room is the broadcast hub when this session is driven as a shared
	// classroom (nil otherwise). Guarded by mu; the act and frame paths
	// publish into it after every state change.
	room *Room

	// gone marks a session that has been released (left, evicted or
	// frozen for handoff) after a concurrent request already resolved it;
	// request paths re-check it under mu and answer 404 so the caller
	// retries into the thaw path instead of acting on a zombie.
	gone bool

	// Batch deduplication state (guarded by mu): the identity of the most
	// recent sequenced act batch and the per-act result bits it produced.
	// A network-level retry of a batch whose reply was lost re-sends the
	// same (base, len) and the server REBUILDS the reply from live state
	// plus these stored results instead of re-applying — exactly-once act
	// semantics over an at-least-once transport. Rebuilding (rather than
	// caching the reply wholesale) is what makes the retry honest about
	// the client's CURRENT seen-counts: if a resume delivered the tail in
	// between, the rebuilt reply serves nothing twice, and if nothing was
	// delivered, the unacked tail is still retained (compaction only
	// happens on acknowledgment) so nothing is lost. A single JSON act is
	// a batch of one. This state rides the snapshot envelope, so thawed
	// and handed-off sessions keep their retry protection.
	lastBase int64  // BaseSeq of the last applied batch (0 = none)
	lastLen  int    // acts in that batch, including a failed one
	lastBits []byte // result bits of the applied prefix (frame.go res* bits)
	lastErr  *Error // act-level error that stopped the batch, nil if none

	// lastSeen (unix nanos) is atomic so the janitor can scan shards
	// without taking every session lock.
	lastSeen atomic.Int64
	// checkpointed is the lastSeen value the periodic checkpointer last
	// persisted; sessions idle since then are skipped.
	checkpointed atomic.Int64
}

// Record implements runtime.Observer (called with mu held — all session
// methods that emit events run under it).
func (h *hosted) Record(e runtime.Event) { h.events = append(h.events, e) }

func (h *hosted) touch() { h.lastSeen.Store(time.Now().UnixNano()) }

// course is one published package, opened once and shared read-only by
// every session hosted on it.
type course struct {
	name      string
	pkg       *gamepack.Package
	videoKey  blobstore.Hash       // content hash of the interned video buffer
	frames    *playback.FrameCache // shared decoded-frame cache (nil = disabled)
	w, h, fps int
}

// tombstone preserves the final reply of a left session for the retry
// window: if the leave's reply dies in transit, the retried leave (same
// seq) is served the SAME final view — including the event and message
// tail the lost reply carried — instead of an empty confirmation that
// would lose them forever. Pruned by the janitor alongside idle sessions.
type tombstone struct {
	seq   int64
	reply *Reply
	at    int64 // unix nanos, for pruning
}

// tombCap bounds tombstones per shard when no janitor runs (TTL<0): the
// oldest are dropped first, which only narrows the retry window for the
// longest-finished sessions.
const tombCap = 4096

// shard is one stripe of the session map with its own lock and counters.
type shard struct {
	mu       sync.Mutex
	sessions map[string]*hosted
	tombs    map[string]*tombstone

	created atomic.Int64
	closed  atomic.Int64 // sessions released by a leave act
	evicted atomic.Int64 // sessions reclaimed by the janitor (or Close)
	frozen  atomic.Int64 // sessions snapshotted to the store on release
	resumed atomic.Int64 // sessions thawed from a snapshot
	acts    atomic.Int64
	frames  atomic.Int64
}

// Manager is the sharded session host behind the play service HTTP
// surface. All methods are safe for concurrent use.
type Manager struct {
	opts    Options
	started time.Time

	// Observability: request-latency and lifecycle-duration histograms
	// (always recording; Register attaches them to a scrape registry) and
	// the bounded span ring behind /debug/traces. Histogram values are
	// nanoseconds; the registry exports them as seconds.
	actNs     *obs.Histogram
	stateNs   *obs.Histogram
	frameNs   *obs.Histogram
	freezeNs  *obs.Histogram
	thawNs    *obs.Histogram
	restoreNs *obs.Histogram
	// fanoutNs is publish→delivery latency per fan-out frame; skipHist is
	// the per-delivery skip delta (how many frames a watcher bypassed to
	// reach the one it got — 0 for a watcher keeping up).
	fanoutNs *obs.Histogram
	skipHist *obs.Histogram
	ring     *obs.SpanRing

	coursesMu sync.RWMutex
	courses   map[string]*course
	// videos interns video payloads by content hash: N courses sharing
	// footage (or differing only in their project document) decode from
	// one buffer instead of N.
	videos map[blobstore.Hash][]byte
	// frameCaches shares decoded presentation frames per interned video:
	// every session on the same footage renders the same frames, so one
	// session's decode serves the whole course (pruned with videos).
	frameCaches map[blobstore.Hash]*playback.FrameCache
	store       *blobstore.Store
	dir         SnapshotDir

	checkpoints atomic.Int64 // sessions persisted by the periodic checkpointer
	// draining is set by DrainAll (node decommission): no new session may
	// be created or thawed here, so an in-flight request racing the drain
	// cannot resurrect a just-frozen session onto a node that is leaving.
	draining atomic.Bool

	// rooms indexes live broadcast hubs by room id (= driven session id).
	// roomsMu is a leaf lock: it is never held while taking a session or
	// room lock except in read-only sweeps (gauge scans, the janitor).
	roomsMu sync.Mutex
	rooms   map[string]*Room
	// Room fan-out counters (monotonic, cluster-mergeable).
	roomRenders   atomic.Int64
	roomDelivered atomic.Int64
	roomSkipped   atomic.Int64
	roomAnswers   atomic.Int64
	watcherJoins  atomic.Int64

	seq    atomic.Int64
	shards []shard
	// inflight counts executing play requests; shed counts the ones
	// admission control refused (MaxInflight).
	inflight atomic.Int64
	shed     atomic.Int64
	// liveCount mirrors the summed shard map sizes; Create reserves a slot
	// on it atomically so a create flood cannot overshoot MaxSessions
	// between a count and an insert.
	liveCount atomic.Int64

	handlerOnce sync.Once
	handler     http.Handler

	closeOnce      sync.Once
	stopJanitor    chan struct{}
	janitorDone    chan struct{}
	checkpointDone chan struct{}
}

// NewManager builds a manager and starts its eviction janitor.
func NewManager(o Options) *Manager {
	o.defaults()
	node := o.Node
	if node == "" {
		node = "play"
	}
	m := &Manager{
		opts:           o,
		started:        time.Now(),
		actNs:          obs.NewHistogram(obs.LatencyBounds),
		stateNs:        obs.NewHistogram(obs.LatencyBounds),
		frameNs:        obs.NewHistogram(obs.LatencyBounds),
		freezeNs:       obs.NewHistogram(obs.LatencyBounds),
		thawNs:         obs.NewHistogram(obs.LatencyBounds),
		restoreNs:      obs.NewHistogram(obs.LatencyBounds),
		fanoutNs:       obs.NewHistogram(obs.LatencyBounds),
		skipHist:       obs.NewHistogram(obs.CountBounds),
		ring:           obs.NewSpanRing(node, 0),
		rooms:          map[string]*Room{},
		courses:        map[string]*course{},
		videos:         map[blobstore.Hash][]byte{},
		frameCaches:    map[blobstore.Hash]*playback.FrameCache{},
		store:          o.Store,
		dir:            o.Dir,
		shards:         make([]shard, o.Shards),
		stopJanitor:    make(chan struct{}),
		janitorDone:    make(chan struct{}),
		checkpointDone: make(chan struct{}),
	}
	for i := range m.shards {
		m.shards[i].sessions = map[string]*hosted{}
		m.shards[i].tombs = map[string]*tombstone{}
	}
	if o.TTL > 0 {
		go m.runJanitor(o.TTL)
	} else {
		close(m.janitorDone)
	}
	if o.CheckpointEvery > 0 && m.canSnapshot() {
		go m.runCheckpointer(o.CheckpointEvery)
	} else {
		close(m.checkpointDone)
	}
	return m
}

// runCheckpointer periodically persists active sessions (see Checkpoint).
func (m *Manager) runCheckpointer(every time.Duration) {
	defer close(m.checkpointDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			m.Checkpoint()
		case <-m.stopJanitor:
			return
		}
	}
}

func (m *Manager) runJanitor(ttl time.Duration) {
	defer close(m.janitorDone)
	every := ttl / 4
	if every < time.Second {
		every = time.Second
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			m.ExpireIdle(time.Now().Add(-ttl))
		case <-m.stopJanitor:
			return
		}
	}
}

// AddCourse publishes a package for hosting. The blob is opened once and
// its video payload interned by content hash: all sessions on the course
// share the parsed package read-only, and courses sharing footage share
// one video buffer (the caller's blob is not retained).
func (m *Manager) AddCourse(name string, pkgBlob []byte) error {
	if name == "" {
		return fmt.Errorf("playsvc: empty course name")
	}
	pkg, err := gamepack.Open(pkgBlob)
	if err != nil {
		return fmt.Errorf("playsvc: course %s: %w", name, err)
	}
	return m.publish(name, pkg)
}

// AddCourseFromManifest opens a course directly out of the chunk store:
// the project document and video are assembled from the manifest's
// content-addressed chunks (deposited by e.g. content.PublishTo or the
// netstream server), so no package blob is ever built on the hosting
// path and shared segments are read once.
func (m *Manager) AddCourseFromManifest(name string, man *gamepack.Manifest) error {
	return m.AddCourseFromManifestTier(name, man, "")
}

// AddCourseFromManifestTier is AddCourseFromManifest pinned to one rung
// of a quality-ladder manifest: the host assembles that tier's video
// section instead of the canonical one — how an edge node hosts the
// "low" rung for a constrained cohort. Tier "" is the canonical rung.
func (m *Manager) AddCourseFromManifestTier(name string, man *gamepack.Manifest, tier string) error {
	if name == "" {
		return fmt.Errorf("playsvc: empty course name")
	}
	if m.store == nil {
		return fmt.Errorf("playsvc: course %s: no chunk store configured", name)
	}
	psec := man.Section(gamepack.SectionProject)
	vsec := man.VideoSection(tier)
	if psec == nil || vsec == nil {
		return fmt.Errorf("playsvc: course %s: manifest lacks project or video tier %q (have %v)",
			name, tier, man.VideoTiers())
	}
	projJSON, err := psec.AssembleSection(m.store.Get)
	if err != nil {
		return fmt.Errorf("playsvc: course %s: %w", name, err)
	}
	proj, err := core.UnmarshalProject(projJSON)
	if err != nil {
		return fmt.Errorf("playsvc: course %s: %w", name, err)
	}
	video, err := vsec.AssembleSection(m.store.Get)
	if err != nil {
		return fmt.Errorf("playsvc: course %s: %w", name, err)
	}
	return m.publish(name, &gamepack.Package{Project: proj, Video: video})
}

// publish probes a parsed course package, interns its video payload by
// content hash (so courses sharing footage decode from one buffer, and
// the caller's blob is not retained) and registers it. Video buffers no
// longer referenced by any course — e.g. the previous footage of a
// just-replaced course — are released.
func (m *Manager) publish(name string, pkg *gamepack.Package) error {
	// Probe one session so a package that cannot start (missing start
	// scenario, bad scripts) is rejected at publish time, not per create.
	probe, err := runtime.NewSessionFromPackage(pkg, runtime.Options{})
	if err != nil {
		return fmt.Errorf("playsvc: course %s: %w", name, err)
	}
	probe.Close()
	w, h, fps := probe.VideoMeta()
	key := blobstore.Sum(pkg.Video)
	m.coursesMu.Lock()
	defer m.coursesMu.Unlock()
	if v, ok := m.videos[key]; ok {
		pkg.Video = v
	} else {
		pkg.Video = append([]byte(nil), pkg.Video...)
		m.videos[key] = pkg.Video
	}
	if m.opts.FrameCacheBytes >= 0 {
		if m.frameCaches[key] == nil {
			budget := m.opts.FrameCacheBytes
			if budget == 0 {
				budget = 32 << 20
			}
			m.frameCaches[key] = playback.NewFrameCache(budget)
		}
	}
	m.courses[name] = &course{name: name, pkg: pkg, videoKey: key, frames: m.frameCaches[key], w: w, h: h, fps: fps}
	used := map[blobstore.Hash]bool{}
	for _, c := range m.courses {
		used[c.videoKey] = true
	}
	for k := range m.videos {
		if !used[k] {
			delete(m.videos, k)
			delete(m.frameCaches, k)
		}
	}
	return nil
}

// Courses lists published course names (unordered).
func (m *Manager) Courses() []string {
	m.coursesMu.RLock()
	defer m.coursesMu.RUnlock()
	out := make([]string, 0, len(m.courses))
	for n := range m.courses {
		out = append(out, n)
	}
	return out
}

// shardIndex stripes a session ID onto a shard.
func shardIndex(session string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(session))
	return int(h.Sum32() % uint32(n))
}

func (m *Manager) shardFor(session string) *shard {
	return &m.shards[shardIndex(session, len(m.shards))]
}

// lookup resolves a live session and its shard.
func (m *Manager) lookup(session string) (*hosted, *shard, error) {
	sh := m.shardFor(session)
	sh.mu.Lock()
	h := sh.sessions[session]
	sh.mu.Unlock()
	if h == nil {
		return nil, nil, errf(http.StatusNotFound, "playsvc: no session %q", session)
	}
	return h, sh, nil
}

// Live counts hosted sessions across all shards (including slots reserved
// by in-flight creates).
func (m *Manager) Live() int { return int(m.liveCount.Load()) }

// LiveSessions lists the ids of the sessions this node currently hosts —
// an introspection hook for operators (and cluster tests) chasing where a
// session physically lives.
func (m *Manager) LiveSessions() []string {
	var ids []string
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		for id := range sh.sessions {
			ids = append(ids, id)
		}
		sh.mu.Unlock()
	}
	return ids
}

// Create opens a new hosted session on a published course — or, when
// req.Resume names a snapshotted session, thaws it — and returns the
// session's view. New sessions include any events the start scenario's
// OnEnter script emitted; a resumed reply carries the transcript and
// event tail beyond the client's seen-counts, so a fresh client (seen
// counts zero) rebuilds the full conversation. Cluster gateways may
// supply req.Session so the id hashes onto the node they routed to.
func (m *Manager) Create(req *CreateRequest) (*Reply, error) {
	if req.Resume != "" {
		return m.resume(req.Trace, req.Resume, req.SeenEvents, req.SeenMessages)
	}
	if req.Course == "" {
		return nil, errf(http.StatusBadRequest, "playsvc: create needs a course or a resume id")
	}
	if m.draining.Load() {
		return nil, errf(http.StatusServiceUnavailable, "playsvc: node is draining")
	}
	m.coursesMu.RLock()
	c := m.courses[req.Course]
	m.coursesMu.RUnlock()
	if c == nil {
		return nil, errf(http.StatusNotFound, "playsvc: no course %q", req.Course)
	}
	// Reserve the slot before building the session: concurrent creates
	// racing a nearly-full cap must not all pass a read-then-insert check.
	if n := m.liveCount.Add(1); m.opts.MaxSessions > 0 && n > int64(m.opts.MaxSessions) {
		m.liveCount.Add(-1)
		return nil, errf(http.StatusServiceUnavailable, "playsvc: session cap (%d) reached", m.opts.MaxSessions)
	}
	id := req.Session
	if id == "" {
		id = fmt.Sprintf("%s-%08d", req.Course, m.seq.Add(1))
	}
	h := &hosted{id: id, course: c}
	h.touch()
	sess, err := runtime.NewSessionFromPackage(c.pkg, runtime.Options{
		DecodeWorkers: m.opts.DecodeWorkers,
		Observer:      h,
		FrameCache:    c.frames,
	})
	if err != nil {
		m.liveCount.Add(-1)
		return nil, err
	}
	h.sess = sess
	sh := m.shardFor(h.id)
	sh.mu.Lock()
	if prev := sh.sessions[h.id]; prev != nil {
		sh.mu.Unlock()
		sess.Close()
		m.liveCount.Add(-1)
		if prev.course == c {
			// A retried create whose first reply was lost in flight:
			// client-generated ids make create idempotent, so answer from
			// the session the first attempt already built.
			prev.touch()
			prev.mu.Lock()
			defer prev.mu.Unlock()
			if !prev.gone {
				prev.ack(req.SeenEvents)
				r := prev.reply(req.SeenEvents, req.SeenMessages)
				r.Course = c.name
				r.Width, r.Height, r.FPS = c.w, c.h, c.fps
				return r, nil
			}
		}
		return nil, errf(http.StatusConflict, "playsvc: session %q already exists", h.id)
	}
	sh.sessions[h.id] = h
	sh.mu.Unlock()
	sh.created.Add(1)

	h.mu.Lock()
	defer h.mu.Unlock()
	// Checkpoint the newborn session before the client learns its id: a
	// node crash right after this reply would otherwise strand a session
	// the client holds a confirmed id for but no snapshot exists of —
	// the one loss the chaos soak's "zero lost sessions" bound forbids.
	if m.canSnapshot() {
		if env, perr := m.persistLocked(h); perr == nil {
			m.dir.Save(h.id, SnapshotRef{Envelope: env, Checkpoint: true})
			h.checkpointed.Store(h.lastSeen.Load())
		}
	}
	r := h.reply(0, 0)
	r.Course = c.name
	r.Width, r.Height, r.FPS = c.w, c.h, c.fps
	return r, nil
}

// resume reattaches to a session by id: live sessions answer directly,
// frozen ones are thawed first. An explicit resume may also thaw a
// checkpoint entry — the client asserts its session's node is gone (a
// cluster gateway pre-rescues live copies before letting this through).
// The reply repeats the create-time course metadata so a reconnecting
// client needs no other state.
func (m *Manager) resume(tc obs.TraceContext, session string, seenEvents, seenMessages int) (*Reply, error) {
	h, _, err := m.lookup(session)
	if err != nil {
		h, _, err = m.thaw(tc, session, true)
	}
	if err != nil {
		return nil, err
	}
	h.touch()
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.gone {
		return nil, errf(http.StatusNotFound, "playsvc: no session %q", session)
	}
	h.ack(seenEvents)
	r := h.reply(seenEvents, seenMessages)
	r.Course = h.course.name
	r.Width, r.Height, r.FPS = h.course.w, h.course.h, h.course.fps
	r.Resumed = true
	return r, nil
}

// ack releases the event-log prefix the client acknowledges; h.mu must be
// held. Compaction happens HERE — on the next request's acknowledged
// seen-count — and never when a tail is merely serialized into a reply:
// a reply can die in transit, and the retried request must still find the
// events it carried. Every request entry point (act, batch, state, resume,
// retried create, leave) acks before doing anything else; reply() below
// is read-only.
func (h *hosted) ack(seenEvents int) {
	n := seenEvents - h.eventBase
	if n <= 0 {
		return
	}
	if n > len(h.events) {
		// Acknowledging more than exists (a client bug or a hostile
		// frame): release everything retained, never go negative.
		n = len(h.events)
	}
	h.events = append(h.events[:0], h.events[n:]...)
	h.eventBase += n
}

// reply assembles the client view: the state snapshot plus the event and
// message tails beyond the client's seen-counts. It does NOT compact the
// event log (see ack); serving a tail twice — a retried request whose
// seen-count is behind the retained base — is safe because replies are
// self-contained. h.mu must be held.
func (h *hosted) reply(seenEvents, seenMessages int) *Reply {
	r := &Reply{
		Session:      h.id,
		Tick:         h.sess.Ticks(),
		State:        h.sess.State().Clone(),
		EventCount:   h.eventBase + len(h.events),
		MessageCount: h.sess.MessageCount(),
		Messages:     h.sess.MessagesFrom(seenMessages),
	}
	from := seenEvents - h.eventBase
	if from < 0 {
		// The client claims less than what it already acknowledged (a
		// retried or reset client); serve everything still retained.
		from = 0
	}
	if from < len(h.events) {
		r.Events = append([]runtime.Event(nil), h.events[from:]...)
	}
	if q, ok := h.sess.PendingQuiz(); ok {
		r.Quiz = q.ID
	}
	return r
}

// Act applies one interaction to a hosted session and returns the updated
// view. A "leave" act releases the session after building its final view.
// A session this node does not host is thawed from the snapshot directory
// first, so eviction and cluster handoff are invisible to the client.
// Latency lands in the act histogram; when the request carries a trace
// context a "play.act" span is recorded.
func (m *Manager) Act(req *ActRequest) (*Reply, error) {
	if !m.admit() {
		return nil, errShed
	}
	t0 := time.Now()
	r, err := m.act(req)
	m.release()
	m.actNs.ObserveSince(t0)
	m.ring.Record(req.Trace, "play.act", t0, err)
	return r, err
}

// errShed is the preallocated load-shedding answer (the act path stays
// allocation-free even while refusing work). RetryAfter tells honoring
// clients how long to stand down.
var errShed = &Error{
	Status:     http.StatusTooManyRequests,
	Msg:        "playsvc: node over capacity, retry later",
	RetryAfter: 1,
}

// admit reserves an execution slot under MaxInflight; a refused request
// is counted as shed. Reservation is an atomic add so a request burst
// racing a nearly-full node cannot overshoot the cap.
func (m *Manager) admit() bool {
	if m.opts.MaxInflight <= 0 {
		return true
	}
	if n := m.inflight.Add(1); n > int64(m.opts.MaxInflight) {
		m.inflight.Add(-1)
		m.shed.Add(1)
		return false
	}
	return true
}

func (m *Manager) release() {
	if m.opts.MaxInflight > 0 {
		m.inflight.Add(-1)
	}
}

// act is the uninstrumented JSON act path: leave handling plus a
// batch-of-one delegation to the shared batch core, so JSON and binary
// acts are identical by construction.
func (m *Manager) act(req *ActRequest) (*Reply, error) {
	if req.Kind == ActLeave {
		return m.actLeave(req)
	}
	batch := BatchRequest{
		Session:      req.Session,
		BaseSeq:      req.Seq,
		SeenEvents:   req.SeenEvents,
		SeenMessages: req.SeenMessages,
		Acts:         []ActRequest{*req},
		Trace:        req.Trace,
	}
	out, err := m.actBatch(&batch)
	if err != nil {
		return nil, err
	}
	if out.ActErr != nil {
		return nil, out.ActErr
	}
	r := out.Reply
	if len(out.Results) == 1 {
		res := out.Results[0]
		if res.HasCorrect {
			v := res.Correct
			r.Correct = &v
		}
		if res.HasTook {
			v := res.Took
			r.Took = &v
		}
	}
	return r, nil
}

// actLeave releases a session. The retry ladder, in order: a live session
// leaves normally; a sequenced retry of an already-applied leave is served
// its tombstoned final view (the tail the lost reply carried); a frozen
// session is thawed FIRST so the final reply includes the envelope's
// unacknowledged tail — discarding the snapshot unseen would lose it.
func (m *Manager) actLeave(req *ActRequest) (*Reply, error) {
	if h, sh, err := m.lookup(req.Session); err == nil {
		return m.leave(req, h, sh)
	}
	if req.Seq > 0 {
		if r := m.shardFor(req.Session).takeTomb(req.Session, req.Seq); r != nil {
			return r, nil
		}
	}
	if m.canSnapshot() {
		if ref, ok := m.dir.Lookup(req.Session); ok {
			if !ref.Checkpoint {
				// A released snapshot may hold an event tail no reply ever
				// delivered; thaw-then-leave hands it to the client with
				// the final view instead of deleting it unseen.
				h, sh, err := m.thaw(req.Trace, req.Session, false)
				if err != nil {
					return nil, err
				}
				return m.leave(req, h, sh)
			}
			// A checkpoint entry means the session still exists —
			// typically live on the node that owned it before a ring
			// move. Confirming the leave here would strand that copy
			// forever; 404 instead so the gateway's rescue freezes it
			// and the retried leave lands where the session really is.
			return nil, errf(http.StatusNotFound, "playsvc: no session %q", req.Session)
		}
	}
	if req.Seq > 0 {
		// A sequenced leave for a session nobody hosts (and without a
		// tombstone — pruned, or another node's) is a retry of a leave
		// that already applied: confirm instead of sending the client
		// into a rescue spiral for a session that is correctly gone.
		return &Reply{Session: req.Session}, nil
	}
	return nil, errf(http.StatusNotFound, "playsvc: no session %q", req.Session)
}

// leave releases a live session after building its final view, and
// tombstones that view so a retried leave (reply lost in transit) still
// receives the final event/message tail.
func (m *Manager) leave(req *ActRequest, h *hosted, sh *shard) (*Reply, error) {
	sh.acts.Add(1)
	h.touch()
	// Remove from the shard before locking the session so the janitor
	// (which locks shard → session) cannot deadlock against us.
	sh.mu.Lock()
	_, still := sh.sessions[req.Session]
	delete(sh.sessions, req.Session)
	sh.mu.Unlock()
	h.mu.Lock()
	defer h.mu.Unlock()
	if still && !h.gone {
		sh.closed.Add(1)
		m.liveCount.Add(-1)
		h.gone = true
		h.sess.Close()
		m.closeRoomLocked(h)
	}
	// A left session must not resurrect from an old snapshot.
	if m.dir != nil {
		m.dir.Delete(req.Session)
	}
	h.ack(req.SeenEvents)
	r := h.reply(req.SeenEvents, req.SeenMessages)
	if req.Seq > 0 && still {
		sh.saveTomb(req.Session, req.Seq, r)
	}
	return r, nil
}

// saveTomb records a left session's final reply for the retry window.
func (sh *shard) saveTomb(session string, seq int64, r *Reply) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.tombs) >= tombCap {
		var oldest string
		var oldestAt int64
		for id, t := range sh.tombs {
			if oldest == "" || t.at < oldestAt {
				oldest, oldestAt = id, t.at
			}
		}
		delete(sh.tombs, oldest)
	}
	sh.tombs[session] = &tombstone{seq: seq, reply: r, at: time.Now().UnixNano()}
}

// takeTomb serves a tombstoned final reply for a matching retried leave.
// The tombstone stays (further retries of the same lost reply must see the
// same answer); the janitor prunes it.
func (sh *shard) takeTomb(session string, seq int64) *Reply {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if t := sh.tombs[session]; t != nil && t.seq == seq {
		return t.reply
	}
	return nil
}

// ActBatch applies a pipelined act batch to a hosted session: all acts
// under one session-lock hold, one coalesced reply. Session-level
// failures (gone, draining, shed) surface as HTTP-level errors; an
// act-level error stops the batch and rides inside the reply (ActErr).
func (m *Manager) ActBatch(req *BatchRequest) (*BatchReply, error) {
	if !m.admit() {
		return nil, errShed
	}
	t0 := time.Now()
	out, err := m.actBatch(req)
	m.release()
	m.actNs.ObserveSince(t0)
	m.ring.Record(req.Trace, "play.actv2", t0, err)
	return out, err
}

// actBatch is the shared core of the act path (JSON acts are batches of
// one). Acks first, dedups on (BaseSeq, len), then applies in order.
func (m *Manager) actBatch(req *BatchRequest) (*BatchReply, error) {
	if len(req.Acts) == 0 {
		return nil, errf(http.StatusBadRequest, "playsvc: empty act batch")
	}
	if len(req.Acts) > maxFrameActs {
		return nil, errf(http.StatusBadRequest, "playsvc: %d acts exceeds the per-batch bound (%d)", len(req.Acts), maxFrameActs)
	}
	for i := range req.Acts {
		if req.Acts[i].Kind == ActLeave {
			return nil, errf(http.StatusBadRequest, "playsvc: leave is not batchable; send it as a single JSON act")
		}
	}
	h, sh, err := m.lookupOrThaw(req.Trace, req.Session)
	if err != nil {
		return nil, err
	}
	sh.acts.Add(int64(len(req.Acts)))
	h.touch()

	h.mu.Lock()
	defer h.mu.Unlock()
	if h.gone {
		// Frozen or released between lookup and lock; the caller retries
		// and lands in the thaw path.
		return nil, errf(http.StatusNotFound, "playsvc: no session %q", req.Session)
	}
	// The request's seen-counts acknowledge the previous reply; compact
	// BEFORE applying (or rebuilding) anything, so the served tail always
	// starts at the client's truth.
	h.ack(req.SeenEvents)
	if req.BaseSeq != 0 && req.BaseSeq == h.lastBase && len(req.Acts) == h.lastLen {
		// Retry of an already-applied batch (its reply was lost): rebuild
		// the reply from live state and the stored result bits instead of
		// double-applying. The unacked tail is still retained, so the
		// rebuilt reply carries everything the lost one did.
		return h.batchReplyLocked(req.SeenEvents, req.SeenMessages, h.lastBits, h.lastErr), nil
	}
	bits := make([]byte, 0, len(req.Acts))
	var actErr *Error
	for i := range req.Acts {
		b, aerr := m.applyOne(h, &req.Acts[i])
		if aerr != nil {
			actErr = aerr
			break
		}
		bits = append(bits, b)
	}
	if req.BaseSeq != 0 {
		h.lastBase, h.lastLen, h.lastErr = req.BaseSeq, len(req.Acts), actErr
		h.lastBits = append(h.lastBits[:0], bits...)
	}
	// Broadcast after applying, before the reply: one render per
	// state-changing batch, no matter how many watchers subscribe. The
	// dedup-retry path above returns without re-applying and without
	// re-publishing, so the render count tracks real state changes exactly.
	if h.room != nil && (len(bits) > 0 || actErr == nil) {
		h.room.publish()
	}
	return h.batchReplyLocked(req.SeenEvents, req.SeenMessages, bits, actErr), nil
}

// batchReplyLocked assembles the coalesced batch reply; h.mu must be held.
func (h *hosted) batchReplyLocked(seenEvents, seenMessages int, bits []byte, actErr *Error) *BatchReply {
	out := &BatchReply{Reply: h.reply(seenEvents, seenMessages), ActErr: actErr}
	if len(bits) > 0 {
		out.Results = make([]ActResult, len(bits))
		for i, b := range bits {
			out.Results[i] = resultFromBits(b)
		}
	}
	return out
}

// applyOne applies one non-leave act to a locked session, returning its
// result bits or the act-level error that refused it.
func (m *Manager) applyOne(h *hosted, a *ActRequest) (byte, *Error) {
	switch a.Kind {
	case ActClick:
		h.sess.Click(a.X, a.Y)
	case ActExamine:
		h.sess.Examine(a.Object)
	case ActTalk:
		h.sess.Talk(a.Object)
	case ActTake:
		bits := byte(resHasTook)
		if h.sess.Take(a.Object) {
			bits |= resTook
		}
		return bits, nil
	case ActUse:
		h.sess.UseItemOn(a.Item, a.Object)
	case ActSelect:
		if err := h.sess.SelectItem(a.Item); err != nil {
			return 0, errf(http.StatusBadRequest, "%v", err)
		}
	case ActClear:
		h.sess.ClearSelection()
	case ActQuiz:
		ok, err := h.sess.AnswerQuiz(a.Quiz, a.Choice)
		if err != nil {
			return 0, errf(http.StatusBadRequest, "%v", err)
		}
		bits := byte(resHasCorrect)
		if ok {
			bits |= resCorrect
		}
		return bits, nil
	case ActGoto:
		if err := h.sess.GotoScenario(a.Object); err != nil {
			return 0, errf(http.StatusBadRequest, "%v", err)
		}
	case ActTick:
		n := a.Ticks
		if n <= 0 {
			n = 1
		}
		if n > m.opts.MaxTicks {
			return 0, errf(http.StatusBadRequest, "playsvc: %d ticks exceeds the per-act bound (%d)", n, m.opts.MaxTicks)
		}
		if err := h.sess.Advance(n); err != nil {
			return 0, errf(http.StatusInternalServerError, "%v", err)
		}
	default:
		return 0, errf(http.StatusBadRequest, "playsvc: unknown action kind %q", a.Kind)
	}
	return 0, nil
}

// StateOf returns a session's current view without acting on it (it still
// refreshes the idle clock and, like every reply, releases the event
// prefix the caller acknowledges via seenEvents).
func (m *Manager) StateOf(session string, seenEvents, seenMessages int) (*Reply, error) {
	return m.stateOf(obs.TraceContext{}, session, seenEvents, seenMessages)
}

func (m *Manager) stateOf(tc obs.TraceContext, session string, seenEvents, seenMessages int) (*Reply, error) {
	if !m.admit() {
		return nil, errShed
	}
	defer m.release()
	t0 := time.Now()
	r, err := m.stateOfInner(tc, session, seenEvents, seenMessages)
	m.stateNs.ObserveSince(t0)
	m.ring.Record(tc, "play.state", t0, err)
	return r, err
}

func (m *Manager) stateOfInner(tc obs.TraceContext, session string, seenEvents, seenMessages int) (*Reply, error) {
	h, _, err := m.lookupOrThaw(tc, session)
	if err != nil {
		return nil, err
	}
	h.touch()
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.gone {
		return nil, errf(http.StatusNotFound, "playsvc: no session %q", session)
	}
	h.ack(seenEvents)
	return h.reply(seenEvents, seenMessages), nil
}

// WithFrame advances the session's playback and renders its presentation
// frame into the session-owned buffer, passing it to fn under the session
// lock — the frame must not be retained past fn. This is the service's
// allocation-free frame path: advance + DecodeInto + cached-sprite
// composition allocate nothing in steady state.
func (m *Manager) WithFrame(session string, advance int, fn func(f *raster.Frame, tick int) error) error {
	return m.withFrame(obs.TraceContext{}, session, advance, fn)
}

func (m *Manager) withFrame(tc obs.TraceContext, session string, advance int, fn func(f *raster.Frame, tick int) error) error {
	if !m.admit() {
		return errShed
	}
	t0 := time.Now()
	err := m.withFrameInner(tc, session, advance, fn)
	m.release()
	m.frameNs.ObserveSince(t0)
	m.ring.Record(tc, "play.frame", t0, err)
	return err
}

func (m *Manager) withFrameInner(tc obs.TraceContext, session string, advance int, fn func(f *raster.Frame, tick int) error) error {
	h, sh, err := m.lookupOrThaw(tc, session)
	if err != nil {
		return err
	}
	sh.frames.Add(1)
	h.touch()
	if advance > m.opts.MaxTicks {
		return errf(http.StatusBadRequest, "playsvc: advance %d exceeds the per-act bound (%d)", advance, m.opts.MaxTicks)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.gone {
		return errf(http.StatusNotFound, "playsvc: no session %q", session)
	}
	if advance > 0 {
		if err := h.sess.Advance(advance); err != nil {
			return err
		}
	}
	if err := h.sess.FrameInto(&h.frame); err != nil {
		return err
	}
	// A driver pulling frames with ?advance also moves the shared session;
	// watchers see that through the same once-per-change publication.
	if advance > 0 && h.room != nil {
		h.room.publish()
	}
	return fn(&h.frame, h.sess.Ticks())
}

// ExpireIdle evicts every session idle since before the cutoff, releasing
// its decode resources, and reports how many it reclaimed. With a
// snapshot store configured the janitor snapshots-then-evicts: the
// session's progress survives in the store and its next request (or an
// explicit resume) thaws it. The janitor calls this with now-TTL; tests
// call it directly.
func (m *Manager) ExpireIdle(cutoff time.Time) int {
	n := 0
	cut := cutoff.UnixNano()
	for i := range m.shards {
		sh := &m.shards[i]
		var victims []*hosted
		sh.mu.Lock()
		for _, h := range sh.sessions {
			if h.lastSeen.Load() < cut {
				victims = append(victims, h)
			}
		}
		// Leave tombstones age out on the same TTL: past it, a retried
		// leave is answered by the no-host fallback (empty confirmation).
		for id, t := range sh.tombs {
			if t.at < cut {
				delete(sh.tombs, id)
			}
		}
		sh.mu.Unlock()
		for _, h := range victims {
			if m.canSnapshot() {
				// A failed freeze (transient store error) leaves the
				// session live for the next sweep: held is recoverable,
				// evicted-without-a-snapshot is not.
				if removed, err := m.freezeOut(sh, h); err == nil && removed {
					sh.evicted.Add(1)
					n++
				}
				continue
			}
			if m.evictOut(sh, h) {
				sh.evicted.Add(1)
				n++
			}
		}
	}
	// Rooms ride the same sweep: watchers that stopped polling without a
	// leave are pruned, and hubs whose driven session is gone are dropped.
	for _, r := range m.roomList() {
		r.pruneWatchers(cut)
		if r.isClosed() {
			m.dropRoom(r.id)
		}
	}
	return n
}

// Close stops the background goroutines and releases every remaining
// session — gracefully: with a snapshot store configured, live sessions
// are frozen first (via ExpireIdle), so a restart resumes them.
func (m *Manager) Close() {
	m.closeOnce.Do(func() {
		close(m.stopJanitor)
		<-m.janitorDone
		<-m.checkpointDone
		m.ExpireIdle(time.Now().Add(24 * time.Hour))
	})
}

// Halt releases everything WITHOUT snapshotting — the crash simulation.
// Sessions keep only whatever the last periodic checkpoint persisted,
// which is exactly the loss bound -checkpoint-every promises. Tests and
// the churn experiment use it; production code wants Close.
func (m *Manager) Halt() {
	m.closeOnce.Do(func() {
		close(m.stopJanitor)
		<-m.janitorDone
		<-m.checkpointDone
		for i := range m.shards {
			sh := &m.shards[i]
			sh.mu.Lock()
			victims := make([]*hosted, 0, len(sh.sessions))
			for _, h := range sh.sessions {
				victims = append(victims, h)
			}
			sh.mu.Unlock()
			for _, h := range victims {
				if m.evictOut(sh, h) {
					sh.evicted.Add(1)
				}
			}
		}
	})
}

// Ring exposes the manager's span ring (mounted at /debug/traces).
func (m *Manager) Ring() *obs.SpanRing { return m.ring }

// sumShards totals one counter across the shards.
func (m *Manager) sumShards(read func(sh *shard) int64) func() int64 {
	return func() int64 {
		var n int64
		for i := range m.shards {
			n += read(&m.shards[i])
		}
		return n
	}
}

// Register exposes the manager's counters and histograms on a metrics
// registry. The playsvc_sessions_*_total families are monotonic counters
// (summed over the shards at scrape time); playsvc_sessions_live and
// playsvc_video_bytes are gauges.
func (m *Manager) Register(reg *obs.Registry) {
	reg.GaugeFunc("playsvc_sessions_live", "hosted sessions right now", func() int64 { return m.liveCount.Load() })
	reg.CounterFunc("playsvc_sessions_created_total", "sessions opened", m.sumShards(func(sh *shard) int64 { return sh.created.Load() }))
	reg.CounterFunc("playsvc_sessions_closed_total", "sessions released by a leave act", m.sumShards(func(sh *shard) int64 { return sh.closed.Load() }))
	reg.CounterFunc("playsvc_sessions_evicted_total", "sessions reclaimed by the janitor", m.sumShards(func(sh *shard) int64 { return sh.evicted.Load() }))
	reg.CounterFunc("playsvc_sessions_frozen_total", "sessions snapshotted on release", m.sumShards(func(sh *shard) int64 { return sh.frozen.Load() }))
	reg.CounterFunc("playsvc_sessions_resumed_total", "sessions thawed from a snapshot", m.sumShards(func(sh *shard) int64 { return sh.resumed.Load() }))
	reg.CounterFunc("playsvc_acts_total", "interactions applied", m.sumShards(func(sh *shard) int64 { return sh.acts.Load() }))
	reg.CounterFunc("playsvc_frames_total", "frames rendered", m.sumShards(func(sh *shard) int64 { return sh.frames.Load() }))
	reg.CounterFunc("playsvc_checkpoints_total", "periodic checkpoint persists", m.checkpoints.Load)
	reg.CounterFunc("playsvc_shed_total", "requests refused by admission control", m.shed.Load)
	reg.GaugeFunc("playsvc_inflight", "play requests executing right now", m.inflight.Load)
	reg.GaugeFunc("playsvc_video_bytes", "resident video payload bytes", func() int64 {
		m.coursesMu.RLock()
		defer m.coursesMu.RUnlock()
		var n int64
		for _, v := range m.videos {
			n += int64(len(v))
		}
		return n
	})
	reg.GaugeFunc("playsvc_rooms", "live broadcast rooms", func() int64 {
		var n int64
		for _, r := range m.roomList() {
			if !r.isClosed() {
				n++
			}
		}
		return n
	})
	reg.GaugeFunc("playsvc_watchers", "room subscriptions right now", func() int64 {
		var n int64
		for _, r := range m.roomList() {
			if !r.isClosed() {
				n += int64(r.watcherCount())
			}
		}
		return n
	})
	reg.CounterFunc("playsvc_watcher_joins_total", "room subscriptions opened", m.watcherJoins.Load)
	reg.CounterFunc("playsvc_room_renders_total", "room publications (one render each)", m.roomRenders.Load)
	reg.CounterFunc("playsvc_room_frames_delivered_total", "fan-out frames handed to watchers", m.roomDelivered.Load)
	reg.CounterFunc("playsvc_room_frames_skipped_total", "fan-out frames dropped for slow watchers", m.roomSkipped.Load)
	reg.CounterFunc("playsvc_room_answers_total", "cohort quiz answers recorded", m.roomAnswers.Load)
	reg.CounterFunc("playsvc_framecache_hits_total", "decoded-frame cache hits", func() int64 { h, _, _, _, _ := m.frameCacheTotals(); return h })
	reg.CounterFunc("playsvc_framecache_misses_total", "decoded-frame cache misses", func() int64 { _, mi, _, _, _ := m.frameCacheTotals(); return mi })
	reg.CounterFunc("playsvc_framecache_evictions_total", "decoded frames evicted by the byte budget", func() int64 { _, _, e, _, _ := m.frameCacheTotals(); return e })
	reg.GaugeFunc("playsvc_framecache_bytes", "decoded pixels resident in the shared frame caches", func() int64 { _, _, _, _, b := m.frameCacheTotals(); return b })
	reg.RegisterHistogram("playsvc_act_seconds", "act request latency", "seconds", m.actNs)
	reg.RegisterHistogram("playsvc_state_seconds", "state request latency", "seconds", m.stateNs)
	reg.RegisterHistogram("playsvc_frame_seconds", "frame request latency", "seconds", m.frameNs)
	reg.RegisterHistogram("playsvc_freeze_seconds", "session freeze duration", "seconds", m.freezeNs)
	reg.RegisterHistogram("playsvc_thaw_seconds", "session thaw duration (restore included)", "seconds", m.thawNs)
	reg.RegisterHistogram("playsvc_restore_seconds", "runtime snapshot restore duration", "seconds", m.restoreNs)
	reg.RegisterHistogram("playsvc_fanout_seconds", "room publish-to-delivery latency", "seconds", m.fanoutNs)
	reg.RegisterHistogram("playsvc_fanout_skipped", "frames bypassed per fan-out delivery", "frames", m.skipHist)
}

// ShardStats is one shard's counters in a Stats snapshot.
type ShardStats struct {
	Live    int   `json:"live"`
	Created int64 `json:"created"`
	Closed  int64 `json:"closed"`
	Evicted int64 `json:"evicted"`
	Frozen  int64 `json:"frozen"`
	Resumed int64 `json:"resumed"`
	Acts    int64 `json:"acts"`
	Frames  int64 `json:"frames"`
}

// Stats is the /play/stats payload: totals plus the per-shard breakdown
// (which also shows how evenly the session hash stripes load).
type Stats struct {
	UptimeSeconds   float64      `json:"uptime_seconds"`
	Courses         []string     `json:"courses"`
	VideoBuffers    int          `json:"video_buffers"` // distinct video payloads resident
	VideoBytes      int64        `json:"video_bytes"`   // bytes they hold (shared across courses)
	SessionsLive    int          `json:"sessions_live"`
	SessionsCreated int64        `json:"sessions_created"`
	SessionsClosed  int64        `json:"sessions_closed"`
	SessionsEvicted int64        `json:"sessions_evicted"`
	SessionsFrozen  int64        `json:"sessions_frozen"`  // snapshotted on release
	SessionsResumed int64        `json:"sessions_resumed"` // thawed from a snapshot
	Checkpoints     int64        `json:"checkpoints"`      // periodic checkpoint persists
	Acts            int64        `json:"acts"`
	Frames          int64        `json:"frames"`
	Shed            int64        `json:"shed"` // requests refused by admission control
	RoomsLive       int          `json:"rooms_live"`
	Watchers        int          `json:"watchers"` // subscriptions across all rooms
	WatcherJoins    int64        `json:"watcher_joins"`
	RoomRenders     int64        `json:"room_renders"`   // one per publication
	RoomDelivered   int64        `json:"room_delivered"` // fan-out frames handed out
	RoomSkipped     int64        `json:"room_skipped"`   // fan-out frames dropped for slow watchers
	RoomAnswers     int64        `json:"room_answers"`   // cohort quiz answers recorded
	FrameCacheHits  int64        `json:"frame_cache_hits"`
	FrameCacheMiss  int64        `json:"frame_cache_misses"`
	FrameCacheEvict int64        `json:"frame_cache_evictions"`
	Shards          []ShardStats `json:"shards"`
}

// Merge accumulates another node's snapshot into this one — how a
// gateway folds per-node stats into the cluster view. Every Sessions*,
// Checkpoints, Acts and Frames field except SessionsLive is a monotonic
// counter and sums cleanly; SessionsLive is a gauge whose sum is the
// cluster's current total. Uptime, courses, video totals and the shard
// breakdown are per-node facts and are left alone.
func (st *Stats) Merge(o Stats) {
	st.SessionsLive += o.SessionsLive
	st.SessionsCreated += o.SessionsCreated
	st.SessionsClosed += o.SessionsClosed
	st.SessionsEvicted += o.SessionsEvicted
	st.SessionsFrozen += o.SessionsFrozen
	st.SessionsResumed += o.SessionsResumed
	st.Checkpoints += o.Checkpoints
	st.Acts += o.Acts
	st.Frames += o.Frames
	st.Shed += o.Shed
	st.RoomsLive += o.RoomsLive
	st.Watchers += o.Watchers
	st.WatcherJoins += o.WatcherJoins
	st.RoomRenders += o.RoomRenders
	st.RoomDelivered += o.RoomDelivered
	st.RoomSkipped += o.RoomSkipped
	st.RoomAnswers += o.RoomAnswers
	st.FrameCacheHits += o.FrameCacheHits
	st.FrameCacheMiss += o.FrameCacheMiss
	st.FrameCacheEvict += o.FrameCacheEvict
}

// Snapshot assembles the live counters.
func (m *Manager) Snapshot() Stats {
	st := Stats{
		UptimeSeconds: time.Since(m.started).Seconds(),
		Courses:       m.Courses(),
		Shards:        make([]ShardStats, len(m.shards)),
	}
	m.coursesMu.RLock()
	st.VideoBuffers = len(m.videos)
	for _, v := range m.videos {
		st.VideoBytes += int64(len(v))
	}
	m.coursesMu.RUnlock()
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		live := len(sh.sessions)
		sh.mu.Unlock()
		ss := ShardStats{
			Live:    live,
			Created: sh.created.Load(),
			Closed:  sh.closed.Load(),
			Evicted: sh.evicted.Load(),
			Frozen:  sh.frozen.Load(),
			Resumed: sh.resumed.Load(),
			Acts:    sh.acts.Load(),
			Frames:  sh.frames.Load(),
		}
		st.Shards[i] = ss
		st.SessionsLive += ss.Live
		st.SessionsCreated += ss.Created
		st.SessionsClosed += ss.Closed
		st.SessionsEvicted += ss.Evicted
		st.SessionsFrozen += ss.Frozen
		st.SessionsResumed += ss.Resumed
		st.Acts += ss.Acts
		st.Frames += ss.Frames
	}
	st.Checkpoints = m.checkpoints.Load()
	st.Shed = m.shed.Load()
	for _, r := range m.roomList() {
		if !r.isClosed() {
			st.RoomsLive++
			st.Watchers += r.watcherCount()
		}
	}
	st.WatcherJoins = m.watcherJoins.Load()
	st.RoomRenders = m.roomRenders.Load()
	st.RoomDelivered = m.roomDelivered.Load()
	st.RoomSkipped = m.roomSkipped.Load()
	st.RoomAnswers = m.roomAnswers.Load()
	st.FrameCacheHits, st.FrameCacheMiss, st.FrameCacheEvict, _, _ = m.frameCacheTotals()
	return st
}

// frameCacheTotals sums the shared decoded-frame caches' counters.
func (m *Manager) frameCacheTotals() (hits, misses, evictions, frames, bytes int64) {
	m.coursesMu.RLock()
	defer m.coursesMu.RUnlock()
	for _, c := range m.frameCaches {
		h, mi, e, f, b := c.Stats()
		hits += h
		misses += mi
		evictions += e
		frames += f
		bytes += b
	}
	return
}
