package playsvc

import (
	"errors"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/blobstore"
	"repro/internal/content"
	"repro/internal/netstream"
	"repro/internal/runtime"
	"repro/internal/sim"
)

// durableOptions returns manager options wired to a fresh shared
// store+directory pair (returned so a second "node" can share them).
func durableOptions(t testing.TB) (Options, *blobstore.Store, *MemDir) {
	t.Helper()
	store, err := blobstore.New(blobstore.Options{Backend: blobstore.NewMemory()})
	if err != nil {
		t.Fatal(err)
	}
	dir := NewMemDir()
	return Options{Shards: 4, TTL: -1, Store: store, Dir: dir}, store, dir
}

// durableService mounts a durable manager the way liveService does.
func durableService(t testing.TB, o Options) (*httptest.Server, *Manager) {
	t.Helper()
	m := NewManager(o)
	t.Cleanup(m.Close)
	if err := m.AddCourse("classroom", classroomBlob(t)); err != nil {
		t.Fatal(err)
	}
	srv := netstream.NewServer()
	if err := srv.Mount("/play/", m.Handler()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, m
}

// TestGoldenReplaySnapshotResume is the snapshot-fidelity acceptance
// gate: a seeded trace is run halfway, the hosted session is frozen, and
// it is resumed (a) on the same manager after TTL eviction and (b) on a
// second cluster node sharing only the store and directory. Both resumed
// runs must finish the trace with event logs, transcript and final state
// bit-identical to the uninterrupted run.
func TestGoldenReplaySnapshotResume(t *testing.T) {
	pkg := classroomBlob(t)

	// Record the golden trace and the uninterrupted reference log.
	var golden recorder
	res, err := sim.Run(pkg, sim.GuidedFactory, sim.Config{
		MaxSteps: 40, Patience: 15, Seed: 7, RecordTrace: true, Observer: &golden,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("guided seed run did not complete: %+v", res)
	}
	wantLog := golden.log()
	ref, err := runtime.NewSession(pkg, runtime.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if err := sim.Replay(ref, res.Trace); err != nil {
		t.Fatal(err)
	}
	wantState, err := ref.State().Save()
	if err != nil {
		t.Fatal(err)
	}
	wantMsgs := ref.Messages()
	half := len(res.Trace) / 2

	// finish replays the back half through a resumed client and compares
	// everything against the reference.
	finish := func(t *testing.T, ts *httptest.Server, id string, firstLog []runtime.Event) {
		t.Helper()
		var rec2 recorder
		c2, err := Dial(ClientOptions{
			BaseURL:  ts.URL,
			Resume:   id,
			Project:  content.Classroom().Project,
			Observer: &rec2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if c2.SessionID() != id {
			t.Fatalf("resumed session id = %q, want %q", c2.SessionID(), id)
		}
		if w, h, fps := c2.VideoMeta(); w != 160 || h != 120 || fps != 10 {
			t.Fatalf("resume reply lost video metadata: %dx%d@%d", w, h, fps)
		}
		if err := sim.Replay(c2, res.Trace[half:]); err != nil {
			t.Fatal(err)
		}
		combined := append(append([]runtime.Event(nil), firstLog...), rec2.log()...)
		if !reflect.DeepEqual(combined, wantLog) {
			t.Fatalf("event logs diverge:\n got %v\nwant %v", combined, wantLog)
		}
		if !reflect.DeepEqual(c2.Messages(), wantMsgs) {
			t.Fatalf("transcripts diverge:\n got %q\nwant %q", c2.Messages(), wantMsgs)
		}
		gotState, err := c2.State().Save()
		if err != nil {
			t.Fatal(err)
		}
		if string(gotState) != string(wantState) {
			t.Fatalf("final states diverge:\n got %s\nwant %s", gotState, wantState)
		}
		if !c2.Ended() || c2.Outcome() != "victory" {
			t.Fatalf("resumed run ended=%v outcome=%q", c2.Ended(), c2.Outcome())
		}
		if err := c2.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// playFirstHalf drives the front half on a fresh client and syncs so
	// the server retains no unacknowledged tail (a planned freeze).
	playFirstHalf := func(t *testing.T, ts *httptest.Server) (string, []runtime.Event) {
		t.Helper()
		var rec1 recorder
		c1, err := Dial(ClientOptions{
			BaseURL:  ts.URL,
			Course:   "classroom",
			Project:  content.Classroom().Project,
			Observer: &rec1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Replay(c1, res.Trace[:half]); err != nil {
			t.Fatal(err)
		}
		if err := c1.Sync(); err != nil {
			t.Fatal(err)
		}
		return c1.SessionID(), rec1.log()
	}

	t.Run("fresh manager after TTL eviction", func(t *testing.T) {
		opts, _, dir := durableOptions(t)
		ts, m := durableService(t, opts)
		id, firstLog := playFirstHalf(t, ts)
		// The janitor path: snapshot-then-evict instead of discard.
		if n := m.ExpireIdle(time.Now().Add(time.Minute)); n != 1 {
			t.Fatalf("evicted %d sessions, want 1", n)
		}
		if _, ok := dir.Lookup(id); !ok {
			t.Fatal("eviction left no snapshot in the directory")
		}
		st := m.Snapshot()
		if st.SessionsFrozen != 1 || st.SessionsLive != 0 {
			t.Fatalf("stats after freeze: %+v", st)
		}
		finish(t, ts, id, firstLog)
		st = m.Snapshot()
		if st.SessionsResumed != 1 {
			t.Fatalf("resumed = %d, want 1", st.SessionsResumed)
		}
	})

	t.Run("second cluster node", func(t *testing.T) {
		opts, store, dir := durableOptions(t)
		tsA, mA := durableService(t, opts)
		optsB := Options{Shards: 4, TTL: -1, Store: store, Dir: dir}
		tsB, mB := durableService(t, optsB)
		id, firstLog := playFirstHalf(t, tsA)
		// Handoff: old owner freezes into the shared store...
		if err := mA.Freeze(id); err != nil {
			t.Fatal(err)
		}
		if mA.Live() != 0 {
			t.Fatalf("node A still hosts %d sessions", mA.Live())
		}
		// ...and the new owner thaws and finishes.
		finish(t, tsB, id, firstLog)
		if st := mB.Snapshot(); st.SessionsResumed != 1 || st.SessionsClosed != 1 {
			t.Fatalf("node B stats: %+v", st)
		}
	})
}

// TestEvictionTransparentToClient pins the auto-thaw path: a client whose
// session the janitor froze keeps acting as if nothing happened.
func TestEvictionTransparentToClient(t *testing.T) {
	opts, _, _ := durableOptions(t)
	ts, m := durableService(t, opts)
	c := dial(t, ts, nil)
	c.Talk("teacher")
	before := len(c.Messages())
	if n := m.ExpireIdle(time.Now().Add(time.Minute)); n != 1 {
		t.Fatalf("evicted %d", n)
	}
	// The next act thaws the session transparently.
	c.Talk("teacher")
	if c.Err() != nil {
		t.Fatalf("act after eviction failed: %v", c.Err())
	}
	if len(c.Messages()) != before+1 {
		t.Fatalf("messages = %d, want %d", len(c.Messages()), before+1)
	}
	st := m.Snapshot()
	if st.SessionsFrozen != 1 || st.SessionsResumed != 1 || st.SessionsLive != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestJanitorPreservesMessageTails is the regression test for the
// eviction bug: a client that had not yet been served the latest message
// tail must see exactly the unseen messages after resume — none lost to
// the freeze, none duplicated.
func TestJanitorPreservesMessageTails(t *testing.T) {
	opts, _, _ := durableOptions(t)
	_, m := durableService(t, opts)
	r0, err := m.Create(&CreateRequest{Course: "classroom"})
	if err != nil {
		t.Fatal(err)
	}
	id := r0.Session
	seenE, seenM := r0.EventCount, r0.MessageCount

	// Two dialogue turns the client acknowledges...
	r1, err := m.Act(&ActRequest{Session: id, Kind: ActTalk, Object: "teacher", SeenEvents: seenE, SeenMessages: seenM})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Messages) != 1 {
		t.Fatalf("first turn served %d messages", len(r1.Messages))
	}
	seenE, seenM = r1.EventCount, r1.MessageCount

	// ...and one more whose reply the client NEVER receives (the reply is
	// served but the ack never arrives — a retry scenario).
	r2, err := m.Act(&ActRequest{Session: id, Kind: ActTalk, Object: "teacher", SeenEvents: seenE, SeenMessages: seenM})
	if err != nil {
		t.Fatal(err)
	}
	lostMsgs, lostEvents := r2.Messages, r2.Events
	if len(lostMsgs) == 0 || len(lostEvents) == 0 {
		t.Fatalf("second turn served %d messages / %d events", len(lostMsgs), len(lostEvents))
	}

	// Janitor freezes the session with the tail still unacknowledged.
	if n := m.ExpireIdle(time.Now().Add(time.Minute)); n != 1 {
		t.Fatalf("evicted %d", n)
	}

	// The client retries with its stale seen-counts: resume must serve
	// exactly the lost tail.
	rr, err := m.Create(&CreateRequest{Resume: id, SeenEvents: seenE, SeenMessages: seenM})
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Resumed {
		t.Fatal("reply not marked resumed")
	}
	if !reflect.DeepEqual(rr.Messages, lostMsgs) {
		t.Fatalf("resumed message tail %q, want %q", rr.Messages, lostMsgs)
	}
	if !reflect.DeepEqual(rr.Events, lostEvents) {
		t.Fatalf("resumed event tail %v, want %v", rr.Events, lostEvents)
	}
	if rr.EventCount != r2.EventCount || rr.MessageCount != r2.MessageCount {
		t.Fatalf("counts after resume %d/%d, want %d/%d", rr.EventCount, rr.MessageCount, r2.EventCount, r2.MessageCount)
	}

	// The conversation continues with no duplicates: a full fresh read
	// shows every turn exactly once.
	full, err := m.StateOf(id, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, msg := range full.Messages {
		counts[msg]++
	}
	for msg, n := range counts {
		if n > 1 && !strings.Contains(msg, "TEACHER") {
			// Scripted dialogue lines cycle, so only identical consecutive
			// serving would be a bug; the two teacher turns are distinct
			// lines in the classroom course.
			t.Fatalf("message %q served %d times", msg, n)
		}
	}
	if full.MessageCount != r2.MessageCount {
		t.Fatalf("transcript length %d, want %d", full.MessageCount, r2.MessageCount)
	}
}

// TestCheckpointBoundsCrashLoss: periodic checkpoints cap what a crash
// loses. Progress after the last checkpoint is gone; everything up to it
// survives on a different node.
func TestCheckpointBoundsCrashLoss(t *testing.T) {
	opts, store, dirr := durableOptions(t)
	m1 := NewManager(opts)
	if err := m1.AddCourse("classroom", classroomBlob(t)); err != nil {
		t.Fatal(err)
	}
	r, err := m1.Create(&CreateRequest{Course: "classroom"})
	if err != nil {
		t.Fatal(err)
	}
	id := r.Session
	if _, err := m1.Act(&ActRequest{Session: id, Kind: ActTick, Ticks: 5}); err != nil {
		t.Fatal(err)
	}
	if n := m1.Checkpoint(); n != 1 {
		t.Fatalf("checkpointed %d sessions, want 1", n)
	}
	// An idle second pass persists nothing new.
	if n := m1.Checkpoint(); n != 0 {
		t.Fatalf("idle checkpoint persisted %d", n)
	}
	// Progress past the checkpoint...
	if _, err := m1.Act(&ActRequest{Session: id, Kind: ActTick, Ticks: 7}); err != nil {
		t.Fatal(err)
	}
	// ...then the node crashes without flushing.
	m1.Halt()

	m2 := NewManager(Options{Shards: 2, TTL: -1, Store: store, Dir: dirr})
	defer m2.Close()
	if err := m2.AddCourse("classroom", classroomBlob(t)); err != nil {
		t.Fatal(err)
	}
	rr, err := m2.Create(&CreateRequest{Resume: id})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Tick != 5 {
		t.Fatalf("resumed at tick %d, want the checkpointed 5 (12 was never persisted)", rr.Tick)
	}
}

// TestSnapshotDedup: freezing many sessions in the same logical state
// stores the runtime snapshot once — the content-addressed payoff.
func TestSnapshotDedup(t *testing.T) {
	opts, store, _ := durableOptions(t)
	m := NewManager(opts)
	defer m.Close()
	if err := m.AddCourse("classroom", classroomBlob(t)); err != nil {
		t.Fatal(err)
	}
	const n = 8
	before := store.Stats()
	ids := make([]string, n)
	for i := range ids {
		r, err := m.Create(&CreateRequest{Course: "classroom"})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = r.Session
	}
	if evicted := m.ExpireIdle(time.Now().Add(time.Minute)); evicted != n {
		t.Fatalf("froze %d, want %d", evicted, n)
	}
	after := store.Stats()
	// Creates checkpoint each newborn session; freezing re-persists the
	// identical state. Across both passes the store holds n envelopes
	// (unique: they carry the session id) + ONE shared runtime snapshot
	// blob: every other put deduplicates — the content-addressed payoff.
	newChunks := after.Chunks - before.Chunks
	if newChunks != n+1 {
		t.Fatalf("checkpoint+freeze of %d identical sessions added %d chunks, want %d (n envelopes + 1 shared snapshot)", n, newChunks, n+1)
	}
	// n-1 snapshot hits at create, then n envelope + n snapshot hits at
	// freeze (nothing changed since the create-time checkpoint).
	if hits := after.DedupHits - before.DedupHits; hits != 3*n-1 {
		t.Fatalf("dedup hits = %d, want %d", hits, 3*n-1)
	}
}

// TestEnvelopeCorruption: the envelope decoder rejects mangled bytes with
// ErrBadSnapshot and never panics.
func TestEnvelopeCorruption(t *testing.T) {
	env := &envelope{
		Session:   "classroom-0001",
		Course:    "classroom",
		EventBase: 7,
		Events:    []runtime.Event{{Tick: 3, Kind: "say", Detail: "hi"}},
	}
	good := env.encode()
	back, err := decodeEnvelope(good)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, env) {
		t.Fatalf("roundtrip: %+v != %+v", back, env)
	}
	cases := map[string][]byte{
		"empty":     nil,
		"tiny":      []byte("VS"),
		"bad magic": append([]byte("XSNE"), good[4:]...),
		"truncated": good[:len(good)-9],
		"bit flip":  append(append([]byte(nil), good[:8]...), good[9:]...),
		"garbage":   []byte(strings.Repeat("z", 64)),
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := decodeEnvelope(data); !errors.Is(err, runtime.ErrBadSnapshot) {
				t.Fatalf("error %v does not wrap ErrBadSnapshot", err)
			}
		})
	}
}

// TestLeaveDeletesSnapshot: a session that leaves must not resurrect from
// a stale directory entry.
func TestLeaveDeletesSnapshot(t *testing.T) {
	opts, _, dir := durableOptions(t)
	_, m := durableService(t, opts)
	r, err := m.Create(&CreateRequest{Course: "classroom"})
	if err != nil {
		t.Fatal(err)
	}
	// Create already checkpointed the newborn session (crash safety for
	// confirmed ids), so the directory holds it and the periodic pass
	// finds nothing dirty.
	if dir.Len() != 1 {
		t.Fatalf("dir holds %d entries, want the create-time checkpoint", dir.Len())
	}
	if n := m.Checkpoint(); n != 0 {
		t.Fatalf("checkpoint = %d, want 0 (session idle since create)", n)
	}
	if _, err := m.Act(&ActRequest{Session: r.Session, Kind: ActLeave}); err != nil {
		t.Fatal(err)
	}
	if dir.Len() != 0 {
		t.Fatal("leave left a snapshot behind")
	}
	if _, err := m.Create(&CreateRequest{Resume: r.Session}); err == nil {
		t.Fatal("left session resurrected")
	}
}

// TestFreezeIdempotent: freezing twice (gateway rescue broadcasts race)
// is a no-op, and freezing an unknown session is a 404.
func TestFreezeIdempotent(t *testing.T) {
	opts, _, _ := durableOptions(t)
	_, m := durableService(t, opts)
	r, err := m.Create(&CreateRequest{Course: "classroom"})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Freeze(r.Session); err != nil {
		t.Fatal(err)
	}
	if err := m.Freeze(r.Session); err != nil {
		t.Fatalf("second freeze: %v", err)
	}
	err = m.Freeze("classroom-never-existed")
	if pe, ok := err.(*Error); !ok || pe.Status != 404 {
		t.Fatalf("freeze of unknown session = %v", err)
	}
}
