package core

import (
	"encoding/json"
	"fmt"
	"sort"
)

// State is the mutable play-time state of a game session. It implements
// script.Env (the read side of the event language) and is what save/load
// persists. Inventory is a multiset with stable order (slot order in the
// inventory window).
type State struct {
	Scenario  string          `json:"scenario"`
	Inventory []string        `json:"inventory,omitempty"`
	Flags     map[string]bool `json:"flags,omitempty"`
	Vars      map[string]int  `json:"vars,omitempty"`
	// Visited counts scenario entries (decision/exploration telemetry).
	Visited map[string]int `json:"visited,omitempty"`
	// Learned marks knowledge units delivered to this player.
	Learned map[string]bool `json:"learned,omitempty"`
	// Rewards lists achievement objects in grant order.
	Rewards []string `json:"rewards,omitempty"`
	// Hidden tracks objects toggled by enable/disable, overriding their
	// authored Enabled state. Keyed by object ID; value true = hidden.
	Hidden  map[string]bool `json:"hidden,omitempty"`
	Ended   bool            `json:"ended,omitempty"`
	Outcome string          `json:"outcome,omitempty"`
}

// NewState initializes state for a project: start scenario entered once,
// initial variables applied.
func NewState(p *Project) *State {
	s := &State{
		Scenario: p.StartScenario,
		Flags:    map[string]bool{},
		Vars:     map[string]int{},
		Visited:  map[string]int{},
		Learned:  map[string]bool{},
		Hidden:   map[string]bool{},
	}
	for k, v := range p.InitialVars {
		s.Vars[k] = v
	}
	s.Visited[p.StartScenario] = 1
	return s
}

// HasItem implements script.Env.
func (s *State) HasItem(name string) bool {
	for _, it := range s.Inventory {
		if it == name {
			return true
		}
	}
	return false
}

// Flag implements script.Env.
func (s *State) Flag(name string) bool { return s.Flags[name] }

// Var implements script.Env.
func (s *State) Var(name string) int { return s.Vars[name] }

// AddItem appends an item to the inventory (duplicates allowed — two coins
// are two slots).
func (s *State) AddItem(name string) { s.Inventory = append(s.Inventory, name) }

// RemoveItem removes the first occurrence; reports whether it was present.
func (s *State) RemoveItem(name string) bool {
	for i, it := range s.Inventory {
		if it == name {
			s.Inventory = append(s.Inventory[:i], s.Inventory[i+1:]...)
			return true
		}
	}
	return false
}

// CountItem returns the multiplicity of an item.
func (s *State) CountItem(name string) int {
	n := 0
	for _, it := range s.Inventory {
		if it == name {
			n++
		}
	}
	return n
}

// EnterScenario records a scenario switch.
func (s *State) EnterScenario(id string) {
	s.Scenario = id
	s.Visited[id]++
}

// ObjectVisible resolves an object's effective visibility: script
// enable/disable overrides the authored default.
func (s *State) ObjectVisible(o *Object) bool {
	if hidden, ok := s.Hidden[o.ID]; ok {
		return !hidden
	}
	return o.Enabled
}

// LearnedUnits returns the delivered knowledge units in sorted order.
func (s *State) LearnedUnits() []string {
	out := make([]string, 0, len(s.Learned))
	for k := range s.Learned {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// MissionComplete reports whether a mission's done-flag is set.
func (s *State) MissionComplete(m *Mission) bool { return s.Flags[m.DoneFlag] }

// Save serializes the state to JSON.
func (s *State) Save() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// LoadState parses a saved state.
func LoadState(data []byte) (*State, error) {
	var s State
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("core: parsing state: %w", err)
	}
	// Maps may be nil after decoding an old/minimal save; make them usable.
	if s.Flags == nil {
		s.Flags = map[string]bool{}
	}
	if s.Vars == nil {
		s.Vars = map[string]int{}
	}
	if s.Visited == nil {
		s.Visited = map[string]int{}
	}
	if s.Learned == nil {
		s.Learned = map[string]bool{}
	}
	if s.Hidden == nil {
		s.Hidden = map[string]bool{}
	}
	return &s, nil
}

// Clone deep-copies the state (the simulator forks states to try branches).
func (s *State) Clone() *State {
	c := &State{
		Scenario: s.Scenario,
		Ended:    s.Ended,
		Outcome:  s.Outcome,
	}
	c.Inventory = append([]string(nil), s.Inventory...)
	c.Rewards = append([]string(nil), s.Rewards...)
	c.Flags = make(map[string]bool, len(s.Flags))
	for k, v := range s.Flags {
		c.Flags[k] = v
	}
	c.Vars = make(map[string]int, len(s.Vars))
	for k, v := range s.Vars {
		c.Vars[k] = v
	}
	c.Visited = make(map[string]int, len(s.Visited))
	for k, v := range s.Visited {
		c.Visited[k] = v
	}
	c.Learned = make(map[string]bool, len(s.Learned))
	for k, v := range s.Learned {
		c.Learned[k] = v
	}
	c.Hidden = make(map[string]bool, len(s.Hidden))
	for k, v := range s.Hidden {
		c.Hidden[k] = v
	}
	return c
}
