package ui

import (
	"fmt"

	"repro/internal/media/raster"
)

// ListBox displays selectable rows — the authoring tool's object and
// scenario lists.
type ListBox struct {
	Box
	Items    []string
	Selected int // index into Items, -1 for none
	OnSelect func(i int, item string)
	rowH     int
}

// NewListBox creates a list with no selection.
func NewListBox(id string, b raster.Rect, items []string) *ListBox {
	return &ListBox{Box: NewBox(id, b), Items: items, Selected: -1, rowH: raster.GlyphH + 3}
}

// Paint draws rows with the selected one highlighted.
func (l *ListBox) Paint(f *raster.Frame) {
	r := l.Bounds()
	f.FillRect(r, raster.White)
	f.DrawRect(r, ThemeBorder)
	for i, item := range l.Items {
		ry := r.Y + 2 + i*l.rowH
		if ry+l.rowH > r.Y+r.H {
			break
		}
		if i == l.Selected {
			f.FillRect(raster.Rect{X: r.X + 1, Y: ry, W: r.W - 2, H: l.rowH}, ThemeAccent)
			f.DrawTextClipped(r.X+3, ry+1, raster.FitText(item, r.W-6), raster.White, r)
		} else {
			f.DrawTextClipped(r.X+3, ry+1, raster.FitText(item, r.W-6), ThemeText, r)
		}
	}
}

// Mouse selects the clicked row.
func (l *ListBox) Mouse(ev MouseEvent) bool {
	if ev.Kind != MouseClick {
		return ev.Kind == MouseDown
	}
	r := l.Bounds()
	i := (ev.Y - r.Y - 2) / l.rowH
	if i >= 0 && i < len(l.Items) {
		l.Selected = i
		if l.OnSelect != nil {
			l.OnSelect(i, l.Items[i])
		}
	}
	return true
}

// SelectedItem returns the current selection, or "" when none.
func (l *ListBox) SelectedItem() string {
	if l.Selected < 0 || l.Selected >= len(l.Items) {
		return ""
	}
	return l.Items[l.Selected]
}

// Keyboard moves the selection with arrow keys.
func (l *ListBox) Keyboard(ev KeyEvent) bool {
	switch ev.Key {
	case KeyUp:
		if l.Selected > 0 {
			l.Selected--
			if l.OnSelect != nil {
				l.OnSelect(l.Selected, l.Items[l.Selected])
			}
		}
		return true
	case KeyDown:
		if l.Selected < len(l.Items)-1 {
			l.Selected++
			if l.OnSelect != nil {
				l.OnSelect(l.Selected, l.Items[l.Selected])
			}
		}
		return true
	}
	return false
}

// SetFocused implements Focusable (the list has no focus decoration).
func (l *ListBox) SetFocused(bool) {}

// VideoView presents a decoded video frame and maps clicks into video
// coordinates — the runtime's augmented video player surface (paper §4.3).
type VideoView struct {
	Box
	Frame *raster.Frame // current video frame (shown letterboxed at 1:1)
	// OnVideoClick receives clicks in video-frame coordinates.
	OnVideoClick func(vx, vy int)
}

// NewVideoView creates a video surface.
func NewVideoView(id string, b raster.Rect) *VideoView {
	return &VideoView{Box: NewBox(id, b)}
}

// VideoOrigin returns the top-left corner where the video frame is drawn
// (centered in the view).
func (v *VideoView) VideoOrigin() (int, int) {
	r := v.Bounds()
	if v.Frame == nil {
		return r.X, r.Y
	}
	return r.X + (r.W-v.Frame.W)/2, r.Y + (r.H-v.Frame.H)/2
}

// ToVideo converts window coordinates to video-frame coordinates.
// ok is false when the point misses the video raster.
func (v *VideoView) ToVideo(x, y int) (vx, vy int, ok bool) {
	if v.Frame == nil {
		return 0, 0, false
	}
	ox, oy := v.VideoOrigin()
	vx, vy = x-ox, y-oy
	return vx, vy, vx >= 0 && vy >= 0 && vx < v.Frame.W && vy < v.Frame.H
}

// Paint letterboxes the frame in the view.
func (v *VideoView) Paint(f *raster.Frame) {
	r := v.Bounds()
	f.FillRect(r, raster.Black)
	f.DrawRect(r, ThemeBorder)
	if v.Frame != nil {
		ox, oy := v.VideoOrigin()
		f.Blit(v.Frame, ox, oy)
	}
}

// Mouse forwards clicks in video coordinates.
func (v *VideoView) Mouse(ev MouseEvent) bool {
	if ev.Kind == MouseClick && v.OnVideoClick != nil {
		if vx, vy, ok := v.ToVideo(ev.X, ev.Y); ok {
			v.OnVideoClick(vx, vy)
		}
	}
	return true
}

// TimelineSegment is one segment shown on a Timeline.
type TimelineSegment struct {
	Name       string
	Start, End int // frame range
}

// Timeline visualizes a film's segment structure — the scenario editor's
// central strip (Figure 1). Clicking a segment selects it.
type Timeline struct {
	Box
	Total    int // total frames represented
	Segments []TimelineSegment
	Selected int // segment index, -1 none
	Marker   int // playhead frame position (-1 hides it)
	OnSelect func(i int, seg TimelineSegment)
}

// NewTimeline creates a timeline over total frames.
func NewTimeline(id string, b raster.Rect, total int) *Timeline {
	return &Timeline{Box: NewBox(id, b), Total: total, Selected: -1, Marker: -1}
}

// frameToX converts a frame index to a window x coordinate.
func (t *Timeline) frameToX(frame int) int {
	r := t.Bounds()
	if t.Total <= 0 {
		return r.X
	}
	return r.X + 1 + frame*(r.W-2)/t.Total
}

// xToFrame converts a window x coordinate to a frame index.
func (t *Timeline) xToFrame(x int) int {
	r := t.Bounds()
	if r.W <= 2 || t.Total <= 0 {
		return 0
	}
	fr := (x - r.X - 1) * t.Total / (r.W - 2)
	if fr < 0 {
		fr = 0
	}
	if fr >= t.Total {
		fr = t.Total - 1
	}
	return fr
}

// Paint draws alternating segment blocks with separators and the playhead.
func (t *Timeline) Paint(f *raster.Frame) {
	r := t.Bounds()
	f.FillRect(r, raster.White)
	f.DrawRect(r, ThemeBorder)
	colors := []raster.RGB{{R: 168, G: 200, B: 235}, {R: 235, G: 214, B: 168}}
	for i, s := range t.Segments {
		x0, x1 := t.frameToX(s.Start), t.frameToX(s.End)
		seg := raster.Rect{X: x0, Y: r.Y + 1, W: x1 - x0, H: r.H - 2}
		c := colors[i%2]
		if i == t.Selected {
			c = ThemeHilite
		}
		f.FillRect(seg, c)
		f.VLine(x0, r.Y+1, r.Y+r.H-2, ThemeBorder)
		f.DrawTextClipped(x0+2, r.Y+(r.H-raster.GlyphH)/2, raster.FitText(s.Name, seg.W-4), ThemeText, seg)
	}
	if t.Marker >= 0 {
		x := t.frameToX(t.Marker)
		f.VLine(x, r.Y+1, r.Y+r.H-2, raster.Red)
	}
}

// Mouse selects the clicked segment.
func (t *Timeline) Mouse(ev MouseEvent) bool {
	if ev.Kind != MouseClick {
		return ev.Kind == MouseDown
	}
	fr := t.xToFrame(ev.X)
	for i, s := range t.Segments {
		if fr >= s.Start && fr < s.End {
			t.Selected = i
			if t.OnSelect != nil {
				t.OnSelect(i, s)
			}
			return true
		}
	}
	return true
}

// PropertyRow is one key-value pair in a PropertySheet.
type PropertyRow struct {
	Key   string
	Value string
}

// PropertySheet displays editable key/value rows — the object editor's
// property grid (paper §4.2). Clicking a row selects it; the owning tool
// edits values through SetValue.
type PropertySheet struct {
	Box
	Rows     []PropertyRow
	Selected int
	OnSelect func(i int, row PropertyRow)
	rowH     int
}

// NewPropertySheet creates an empty sheet.
func NewPropertySheet(id string, b raster.Rect) *PropertySheet {
	return &PropertySheet{Box: NewBox(id, b), Selected: -1, rowH: raster.GlyphH + 3}
}

// SetValue updates the value of the row with the given key, appending a new
// row when absent.
func (p *PropertySheet) SetValue(key, value string) {
	for i := range p.Rows {
		if p.Rows[i].Key == key {
			p.Rows[i].Value = value
			return
		}
	}
	p.Rows = append(p.Rows, PropertyRow{Key: key, Value: value})
}

// Paint draws the two-column grid.
func (p *PropertySheet) Paint(f *raster.Frame) {
	r := p.Bounds()
	f.FillRect(r, raster.White)
	f.DrawRect(r, ThemeBorder)
	keyW := r.W * 2 / 5
	f.VLine(r.X+keyW, r.Y+1, r.Y+r.H-2, ThemeBgDark)
	for i, row := range p.Rows {
		ry := r.Y + 2 + i*p.rowH
		if ry+p.rowH > r.Y+r.H {
			break
		}
		if i == p.Selected {
			f.FillRect(raster.Rect{X: r.X + 1, Y: ry, W: r.W - 2, H: p.rowH}, ThemeHilite)
		}
		f.DrawTextClipped(r.X+2, ry+1, raster.FitText(row.Key, keyW-4), ThemeText, r)
		f.DrawTextClipped(r.X+keyW+3, ry+1, raster.FitText(row.Value, r.W-keyW-6), ThemeText, r)
	}
}

// Mouse selects the clicked row.
func (p *PropertySheet) Mouse(ev MouseEvent) bool {
	if ev.Kind != MouseClick {
		return ev.Kind == MouseDown
	}
	i := (ev.Y - p.Bounds().Y - 2) / p.rowH
	if i >= 0 && i < len(p.Rows) {
		p.Selected = i
		if p.OnSelect != nil {
			p.OnSelect(i, p.Rows[i])
		}
	}
	return true
}

// InventoryBar is the player's backpack strip (paper §3.1: "an inventory
// window is used for displaying what items the player owned"). It is a
// DropTarget: dragging a scene object onto it collects the item.
type InventoryBar struct {
	Box
	Items  []string
	Slots  int
	OnDrop func(payload string) bool // invoked for drops; return accept
	OnPick func(i int, item string)  // invoked when a filled slot is clicked
}

// NewInventoryBar creates a bar with the given slot count.
func NewInventoryBar(id string, b raster.Rect, slots int) *InventoryBar {
	return &InventoryBar{Box: NewBox(id, b), Slots: slots}
}

// Paint draws slot cells with item names.
func (iv *InventoryBar) Paint(f *raster.Frame) {
	r := iv.Bounds()
	f.FillRect(r, ThemeBgDark)
	f.DrawRect(r, ThemeBorder)
	if iv.Slots <= 0 {
		return
	}
	slotW := (r.W - 2) / iv.Slots
	for s := 0; s < iv.Slots; s++ {
		cell := raster.Rect{X: r.X + 1 + s*slotW, Y: r.Y + 1, W: slotW - 1, H: r.H - 2}
		f.FillRect(cell, ThemePanel)
		f.DrawRect(cell, ThemeBorder)
		if s < len(iv.Items) {
			f.DrawTextClipped(cell.X+2, cell.Y+(cell.H-raster.GlyphH)/2,
				raster.FitText(iv.Items[s], cell.W-4), ThemeText, cell)
		}
	}
}

// AcceptDrop adds the payload as an item (delegating to OnDrop when set).
func (iv *InventoryBar) AcceptDrop(payload string, x, y int) bool {
	if len(iv.Items) >= iv.Slots {
		return false
	}
	if iv.OnDrop != nil {
		return iv.OnDrop(payload)
	}
	iv.Items = append(iv.Items, payload)
	return true
}

// Mouse reports clicks on filled slots through OnPick.
func (iv *InventoryBar) Mouse(ev MouseEvent) bool {
	if ev.Kind != MouseClick || iv.Slots <= 0 {
		return true
	}
	r := iv.Bounds()
	slotW := (r.W - 2) / iv.Slots
	if slotW <= 0 {
		return true
	}
	s := (ev.X - r.X - 1) / slotW
	if s >= 0 && s < len(iv.Items) && iv.OnPick != nil {
		iv.OnPick(s, iv.Items[s])
	}
	return true
}

// MenuBar is a horizontal strip of menu labels firing a callback per entry.
type MenuBar struct {
	Box
	Entries  []string
	OnSelect func(i int, entry string)
}

// NewMenuBar creates the bar.
func NewMenuBar(id string, b raster.Rect, entries []string) *MenuBar {
	return &MenuBar{Box: NewBox(id, b), Entries: entries}
}

const menuEntryPad = 8

// Paint draws the entries left to right.
func (m *MenuBar) Paint(f *raster.Frame) {
	r := m.Bounds()
	f.FillRect(r, ThemeBg)
	f.HLine(r.X, r.X+r.W-1, r.Y+r.H-1, ThemeBorder)
	x := r.X + 3
	for _, e := range m.Entries {
		f.DrawTextClipped(x, r.Y+(r.H-raster.GlyphH)/2, e, ThemeText, r)
		x += raster.TextWidth(e) + menuEntryPad
	}
}

// Mouse maps a click to the entry under the pointer.
func (m *MenuBar) Mouse(ev MouseEvent) bool {
	if ev.Kind != MouseClick {
		return ev.Kind == MouseDown
	}
	x := m.Bounds().X + 3
	for i, e := range m.Entries {
		w := raster.TextWidth(e)
		if ev.X >= x && ev.X < x+w+menuEntryPad/2 {
			if m.OnSelect != nil {
				m.OnSelect(i, e)
			}
			return true
		}
		x += w + menuEntryPad
	}
	return true
}

// StatusBar is a single-line message strip (the runtime shows NPC dialogue
// and feedback here).
type StatusBar struct {
	Box
	Text string
}

// NewStatusBar creates the bar.
func NewStatusBar(id string, b raster.Rect) *StatusBar {
	return &StatusBar{Box: NewBox(id, b)}
}

// Paint draws the sunken status strip.
func (s *StatusBar) Paint(f *raster.Frame) {
	r := s.Bounds()
	f.FillRect(r, ThemeBg)
	f.DrawRect(r, ThemeBgDark)
	f.DrawTextClipped(r.X+2, r.Y+(r.H-raster.GlyphH)/2, raster.FitText(s.Text, r.W-4), ThemeText, r)
}

// PopupPanel is a ready-made modal popup with a message and an OK button —
// the paper's "text messages ... popped up by the users' interaction".
type PopupPanel struct {
	*Panel
	OK *Button
}

// NewPopup builds a centered popup for the given window size.
func NewPopup(id string, winW, winH int, title, message string, onOK func()) *PopupPanel {
	w, h := winW*2/3, 60
	b := raster.Rect{X: (winW - w) / 2, Y: (winH - h) / 2, W: w, H: h}
	p := NewPanel(id, b, title)
	p.BgColor = ThemePanel
	lbl := NewLabel(id+".msg", raster.Rect{X: b.X + 4, Y: b.Y + TitleBarHeight + 4, W: w - 8, H: 12}, message)
	ok := NewButton(id+".ok", raster.Rect{X: b.X + (w-40)/2, Y: b.Y + h - 18, W: 40, H: 13}, "OK", onOK)
	p.Add(lbl)
	p.Add(ok)
	return &PopupPanel{Panel: p, OK: ok}
}

// String renders a compact description (debugging aid).
func (p *PopupPanel) String() string {
	return fmt.Sprintf("popup %q at %+v", p.Title, p.Bounds())
}
