#!/bin/sh
# linkcheck.sh — verify that every relative markdown link in the repo's
# top-level docs points at a file that exists. External (http/https)
# links are skipped: this runs in CI without network access, and the
# docs deliberately keep almost everything in-repo. Non-gating in CI,
# but exits non-zero on any broken link so the job output names them.
#
#   scripts/linkcheck.sh              # checks the default doc set
#   scripts/linkcheck.sh FILE...      # checks the given files
set -eu

cd "$(dirname "$0")/.."

docs="$*"
if [ -z "$docs" ]; then
    docs="README.md DESIGN.md EXPERIMENTS.md ROADMAP.md"
fi

status=0
for doc in $docs; do
    if [ ! -f "$doc" ]; then
        echo "linkcheck: $doc: no such file" >&2
        status=1
        continue
    fi
    # Inline links: [text](target). One match per line is enough for
    # these docs; anchors (#...) are stripped before the existence test.
    grep -no '\[[^]]*\]([^)]*)' "$doc" | while IFS=: read -r line match; do
        target=${match##*](}
        target=${target%)}
        case $target in
        http://*|https://*|mailto:*) continue ;;   # external: skipped
        \#*) continue ;;                            # same-file anchor
        esac
        file=${target%%#*}
        if [ ! -e "$file" ]; then
            echo "$doc:$line: broken link -> $target"
        fi
    done > /tmp/linkcheck.$$ || true
    if [ -s /tmp/linkcheck.$$ ]; then
        cat /tmp/linkcheck.$$ >&2
        status=1
    fi
    rm -f /tmp/linkcheck.$$
done

if [ "$status" -eq 0 ]; then
    echo "linkcheck: OK ($docs)"
fi
exit $status
