package sim

import (
	"math/rand"
	"testing"

	"repro/internal/content"
	"repro/internal/media/studio"
	"repro/internal/runtime"
)

var classroomBlob []byte

func blob(t testing.TB) []byte {
	t.Helper()
	if classroomBlob == nil {
		b, err := content.Classroom().BuildPackage(studio.Options{QStep: 10})
		if err != nil {
			t.Fatal(err)
		}
		classroomBlob = b
	}
	return classroomBlob
}

func TestAvailableActionsEnumerates(t *testing.T) {
	s, err := runtime.NewSession(blob(t), runtime.Options{})
	if err != nil {
		t.Fatal(err)
	}
	actions := AvailableActions(s)
	want := map[string]bool{
		"talk teacher":      true,
		"examine computer":  true,
		"click computer":    true,
		"examine desk-coin": true,
		"take desk-coin":    true,
		"click to-market":   true,
	}
	got := map[string]bool{}
	for _, a := range actions {
		got[a.String()] = true
	}
	for k := range want {
		if !got[k] {
			t.Errorf("missing action %q in %v", k, actions)
		}
	}
	// No use actions yet (empty inventory).
	for _, a := range actions {
		if a.Kind == "use" {
			t.Errorf("use action with empty inventory: %v", a)
		}
	}
	// After taking the coin, use actions appear.
	s.Take("desk-coin")
	found := false
	for _, a := range AvailableActions(s) {
		if a.Kind == "use" && a.Item == "coin" {
			found = true
		}
	}
	if !found {
		t.Error("no use actions after acquiring an item")
	}
}

func TestGuidedCompletesClassroom(t *testing.T) {
	res, err := Run(blob(t), GuidedFactory, Config{MaxSteps: 80, Patience: 15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("guided learner failed: %+v report=%s", res, res.Report)
	}
	if res.Report.Outcome != "victory" {
		t.Errorf("outcome = %q", res.Report.Outcome)
	}
	if got := len(res.Report.UniqueKnowledge()); got != 3 {
		t.Errorf("knowledge = %d, want 3", got)
	}
}

func TestExplorerEventuallyCompletes(t *testing.T) {
	// Across a few seeds, the explorer should finish at least once and
	// always deliver some knowledge.
	completed := 0
	for seed := int64(0); seed < 5; seed++ {
		res, err := Run(blob(t), ExplorerFactory, Config{MaxSteps: 150, Patience: 25, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.Completed {
			completed++
		}
		if len(res.Report.UniqueKnowledge()) == 0 {
			t.Errorf("seed %d: explorer learned nothing", seed)
		}
	}
	if completed == 0 {
		t.Error("explorer never completed in 5 seeds")
	}
}

func TestRandomWalkerLearnsLessThanGuided(t *testing.T) {
	gRes, err := RunCohort(blob(t), GuidedFactory, 8, Config{MaxSteps: 60, Patience: 12, Seed: 100}, 2)
	if err != nil {
		t.Fatal(err)
	}
	rRes, err := RunCohort(blob(t), RandomFactory, 8, Config{MaxSteps: 60, Patience: 12, Seed: 100}, 2)
	if err != nil {
		t.Fatal(err)
	}
	g, r := Summarize(gRes), Summarize(rRes)
	if g.MeanKnowledge < r.MeanKnowledge {
		t.Errorf("guided (%.2f) should learn at least as much as random (%.2f)",
			g.MeanKnowledge, r.MeanKnowledge)
	}
	if CompletionRate(gRes) < CompletionRate(rRes) {
		t.Errorf("guided completion %.2f below random %.2f", CompletionRate(gRes), CompletionRate(rRes))
	}
}

func TestRewardBoostIncreasesPersistence(t *testing.T) {
	// E7's mechanism in miniature: with zero patience boost rewards are
	// ignored; with a boost, reward grants extend the session.
	base := Config{MaxSteps: 120, Patience: 6, RewardBoost: 0, Seed: 42}
	boosted := base
	boosted.RewardBoost = 20
	nBase, errB := RunCohort(blob(t), ExplorerFactory, 10, base, 2)
	if errB != nil {
		t.Fatal(errB)
	}
	nBoost, errB2 := RunCohort(blob(t), ExplorerFactory, 10, boosted, 2)
	if errB2 != nil {
		t.Fatal(errB2)
	}
	baseSteps, boostSteps := 0, 0
	for i := range nBase {
		baseSteps += nBase[i].Steps
		boostSteps += nBoost[i].Steps
	}
	if CompletionRate(nBoost) < CompletionRate(nBase) {
		t.Errorf("reward-motivated completion %.2f below indifferent %.2f",
			CompletionRate(nBoost), CompletionRate(nBase))
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	a, err := Run(blob(t), ExplorerFactory, Config{MaxSteps: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(blob(t), ExplorerFactory, Config{MaxSteps: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != b.Steps || a.Completed != b.Completed || a.QuitReason != b.QuitReason {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestBoredomQuits(t *testing.T) {
	// A random walker with tiny patience in a world where novelty dries up
	// must quit bored (or run out of steps), not loop forever.
	res, err := Run(blob(t), RandomFactory, Config{MaxSteps: 500, Patience: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.QuitReason != "bored" && res.QuitReason != "ended" && res.QuitReason != "max-steps" {
		t.Fatalf("quit reason = %q", res.QuitReason)
	}
	if res.QuitReason == "bored" && res.Steps >= 500 {
		t.Error("bored quit did not shorten the run")
	}
}

func TestPolicyChooseEmptyActions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, f := range []Factory{RandomFactory, ExplorerFactory, GuidedFactory} {
		p := f.New()
		if _, ok := p.Choose(nil, nil, rng); ok {
			t.Errorf("%s chose from nothing", f.Name)
		}
	}
}

func TestActionString(t *testing.T) {
	if got := (Action{Kind: "use", Object: "computer", Item: "ram"}).String(); got != "use ram on computer" {
		t.Errorf("use string = %q", got)
	}
	if got := (Action{Kind: "take", Object: "coin"}).String(); got != "take coin" {
		t.Errorf("take string = %q", got)
	}
}
