package sim

import (
	"math/rand"
	"testing"

	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/media/container"
	"repro/internal/media/raster"
	"repro/internal/media/studio"
	"repro/internal/media/synth"
	"repro/internal/runtime"
)

var classroomBlob []byte

func blob(t testing.TB) []byte {
	t.Helper()
	if classroomBlob == nil {
		b, err := content.Classroom().BuildPackage(studio.Options{QStep: 10})
		if err != nil {
			t.Fatal(err)
		}
		classroomBlob = b
	}
	return classroomBlob
}

func TestAvailableActionsEnumerates(t *testing.T) {
	s, err := runtime.NewSession(blob(t), runtime.Options{})
	if err != nil {
		t.Fatal(err)
	}
	actions := AvailableActions(s)
	want := map[string]bool{
		"talk teacher":      true,
		"examine computer":  true,
		"click computer":    true,
		"examine desk-coin": true,
		"take desk-coin":    true,
		"click to-market":   true,
	}
	got := map[string]bool{}
	for _, a := range actions {
		got[a.String()] = true
	}
	for k := range want {
		if !got[k] {
			t.Errorf("missing action %q in %v", k, actions)
		}
	}
	// No use actions yet (empty inventory).
	for _, a := range actions {
		if a.Kind == "use" {
			t.Errorf("use action with empty inventory: %v", a)
		}
	}
	// After taking the coin, use actions appear.
	s.Take("desk-coin")
	found := false
	for _, a := range AvailableActions(s) {
		if a.Kind == "use" && a.Item == "coin" {
			found = true
		}
	}
	if !found {
		t.Error("no use actions after acquiring an item")
	}
}

func TestGuidedCompletesClassroom(t *testing.T) {
	res, err := Run(blob(t), GuidedFactory, Config{MaxSteps: 80, Patience: 15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("guided learner failed: %+v report=%s", res, res.Report)
	}
	if res.Report.Outcome != "victory" {
		t.Errorf("outcome = %q", res.Report.Outcome)
	}
	if got := len(res.Report.UniqueKnowledge()); got != 3 {
		t.Errorf("knowledge = %d, want 3", got)
	}
}

func TestExplorerEventuallyCompletes(t *testing.T) {
	// Across a few seeds, the explorer should finish at least once and
	// always deliver some knowledge.
	completed := 0
	for seed := int64(0); seed < 5; seed++ {
		res, err := Run(blob(t), ExplorerFactory, Config{MaxSteps: 150, Patience: 25, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.Completed {
			completed++
		}
		if len(res.Report.UniqueKnowledge()) == 0 {
			t.Errorf("seed %d: explorer learned nothing", seed)
		}
	}
	if completed == 0 {
		t.Error("explorer never completed in 5 seeds")
	}
}

func TestRandomWalkerLearnsLessThanGuided(t *testing.T) {
	gRes, err := RunCohort(blob(t), GuidedFactory, 8, Config{MaxSteps: 60, Patience: 12, Seed: 100}, 2)
	if err != nil {
		t.Fatal(err)
	}
	rRes, err := RunCohort(blob(t), RandomFactory, 8, Config{MaxSteps: 60, Patience: 12, Seed: 100}, 2)
	if err != nil {
		t.Fatal(err)
	}
	g, r := Summarize(gRes), Summarize(rRes)
	if g.MeanKnowledge < r.MeanKnowledge {
		t.Errorf("guided (%.2f) should learn at least as much as random (%.2f)",
			g.MeanKnowledge, r.MeanKnowledge)
	}
	if CompletionRate(gRes) < CompletionRate(rRes) {
		t.Errorf("guided completion %.2f below random %.2f", CompletionRate(gRes), CompletionRate(rRes))
	}
}

func TestRewardBoostIncreasesPersistence(t *testing.T) {
	// E7's mechanism in miniature: with zero patience boost rewards are
	// ignored; with a boost, reward grants extend the session.
	base := Config{MaxSteps: 120, Patience: 6, RewardBoost: 0, Seed: 42}
	boosted := base
	boosted.RewardBoost = 20
	nBase, errB := RunCohort(blob(t), ExplorerFactory, 10, base, 2)
	if errB != nil {
		t.Fatal(errB)
	}
	nBoost, errB2 := RunCohort(blob(t), ExplorerFactory, 10, boosted, 2)
	if errB2 != nil {
		t.Fatal(errB2)
	}
	baseSteps, boostSteps := 0, 0
	for i := range nBase {
		baseSteps += nBase[i].Steps
		boostSteps += nBoost[i].Steps
	}
	if CompletionRate(nBoost) < CompletionRate(nBase) {
		t.Errorf("reward-motivated completion %.2f below indifferent %.2f",
			CompletionRate(nBoost), CompletionRate(nBase))
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	a, err := Run(blob(t), ExplorerFactory, Config{MaxSteps: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(blob(t), ExplorerFactory, Config{MaxSteps: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != b.Steps || a.Completed != b.Completed || a.QuitReason != b.QuitReason {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestBoredomQuits(t *testing.T) {
	// A random walker with tiny patience in a world where novelty dries up
	// must quit bored (or run out of steps), not loop forever.
	res, err := Run(blob(t), RandomFactory, Config{MaxSteps: 500, Patience: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.QuitReason != "bored" && res.QuitReason != "ended" && res.QuitReason != "max-steps" {
		t.Fatalf("quit reason = %q", res.QuitReason)
	}
	if res.QuitReason == "bored" && res.Steps >= 500 {
		t.Error("bored quit did not shorten the run")
	}
}

func TestPolicyChooseEmptyActions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, f := range []Factory{RandomFactory, ExplorerFactory, GuidedFactory} {
		p := f.New()
		if _, ok := p.Choose(nil, nil, rng); ok {
			t.Errorf("%s chose from nothing", f.Name)
		}
	}
}

// miniPackage wraps a one-segment synthetic film around a custom project —
// the fixture for edge-case scenarios the demo courses never produce.
func miniPackage(t *testing.T, build func(p *core.Project)) []byte {
	t.Helper()
	film := synth.FromScenes(64, 48, 5, 11, []synth.SceneShot{{Kind: synth.Classroom, Seconds: 1}})
	p := core.NewProject("edge case")
	p.StartScenario = "only"
	p.Scenarios = []*core.Scenario{{ID: "only", Name: "Only", Segment: "seg"}}
	build(p)
	course := &content.Course{
		Project:  p,
		Film:     film,
		Chapters: []container.Chapter{{Name: "seg", Start: 0, End: film.FrameCount()}},
	}
	blob, err := course.BuildPackage(studio.Options{QStep: 12})
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestAvailableActionsEdgeCases sweeps the enumerator's degenerate inputs:
// scenarios with nothing to do must yield no actions (and a run must quit
// "no-actions" instead of spinning), hidden objects must not leak verbs,
// and inventory items must only produce use-actions against non-items.
func TestAvailableActionsEdgeCases(t *testing.T) {
	cases := []struct {
		name  string
		build func(p *core.Project)
		// prep mutates the session before enumeration.
		prep        func(t *testing.T, s *runtime.Session)
		wantActions []string // exact action strings, in order
		wantQuit    string   // expected QuitReason of a full Run ("" = skip)
	}{
		{
			name:     "empty scenario",
			build:    func(p *core.Project) {},
			wantQuit: "no-actions",
		},
		{
			name: "no visible objects",
			build: func(p *core.Project) {
				p.Scenarios[0].Objects = []*core.Object{
					{ID: "ghost", Name: "Ghost", Kind: core.Hotspot, Enabled: false},
					{ID: "shade", Name: "Shade", Kind: core.NPC, Enabled: false},
				}
			},
			wantQuit: "no-actions",
		},
		{
			name: "script-disabled object vanishes",
			build: func(p *core.Project) {
				p.Scenarios[0].Objects = []*core.Object{
					{ID: "door", Name: "Door", Kind: core.Hotspot, Enabled: true},
				}
			},
			prep: func(t *testing.T, s *runtime.Session) {
				s.State().Hidden["door"] = true
			},
			wantActions: nil,
		},
		{
			name: "items do not receive use-actions",
			build: func(p *core.Project) {
				p.Items = []*core.ItemDef{{ID: "rock", Name: "Rock"}}
				p.Scenarios[0].Objects = []*core.Object{
					{ID: "pebble", Name: "Pebble", Kind: core.Item, Enabled: true, Takeable: true},
					{ID: "wall", Name: "Wall", Kind: core.Hotspot, Enabled: true},
				}
			},
			prep: func(t *testing.T, s *runtime.Session) {
				s.State().AddItem("rock")
				s.State().AddItem("rock") // duplicate items produce one use-action each pair
			},
			wantActions: []string{
				"examine pebble", "take pebble",
				"examine wall", "click wall",
				"use rock on wall",
			},
		},
		{
			name: "ended session enumerates nothing",
			build: func(p *core.Project) {
				p.Scenarios[0].Objects = []*core.Object{
					{ID: "exit", Name: "Exit", Kind: core.Hotspot, Enabled: true,
						Region: raster.Rect{X: 10, Y: 10, W: 20, H: 20},
						Events: []core.Event{{Trigger: core.OnClick, Script: `end "done";`}}},
				}
			},
			prep: func(t *testing.T, s *runtime.Session) {
				Apply(s, Action{Kind: "click", Object: "exit"})
				if !s.Ended() {
					t.Fatal("click did not end the session")
				}
			},
			wantActions: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			blob := miniPackage(t, tc.build)
			s, err := runtime.NewSession(blob, runtime.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if tc.prep != nil {
				tc.prep(t, s)
			}
			var got []string
			for _, a := range AvailableActions(s) {
				got = append(got, a.String())
			}
			if tc.prep != nil || tc.wantActions != nil {
				if len(got) != len(tc.wantActions) {
					t.Fatalf("actions = %v, want %v", got, tc.wantActions)
				}
				for i := range got {
					if got[i] != tc.wantActions[i] {
						t.Fatalf("actions = %v, want %v", got, tc.wantActions)
					}
				}
			} else if len(got) != 0 {
				t.Fatalf("actions = %v, want none", got)
			}
			if tc.wantQuit != "" {
				res, err := Run(blob, RandomFactory, Config{MaxSteps: 10, Seed: 1})
				if err != nil {
					t.Fatal(err)
				}
				if res.QuitReason != tc.wantQuit {
					t.Fatalf("quit reason = %q, want %q", res.QuitReason, tc.wantQuit)
				}
			}
		})
	}
}

// TestApplyEdgeCases drives Apply with hostile inputs: unknown kinds,
// missing objects and quiz-locked state must all be inert, and the
// selected-item click path must consume the selection exactly once.
func TestApplyEdgeCases(t *testing.T) {
	s, err := runtime.NewSession(blob(t), runtime.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Unknown kind / unknown object: no-ops, no panic, no state change.
	before := len(s.Messages())
	Apply(s, Action{Kind: "dance", Object: "teacher"})
	Apply(s, Action{Kind: "examine", Object: "no-such-object"})
	Apply(s, Action{Kind: "take", Object: "no-such-object"})
	Apply(s, Action{Kind: "click", Object: "no-such-object"})
	Apply(s, Action{Kind: "goto", Object: "no-such-scenario"})
	if got := len(s.Messages()); got != before {
		t.Fatalf("hostile applies produced %d messages", got-before)
	}
	if s.Scenario().ID != "classroom" {
		t.Fatalf("scenario drifted to %q", s.Scenario().ID)
	}

	// Quiz-locked state: examining the computer asks q-diagnosis once.
	Apply(s, Action{Kind: "examine", Object: "computer"})
	quiz, ok := s.PendingQuiz()
	if !ok || quiz.ID != "q-diagnosis" {
		t.Fatalf("pending quiz = %v %v", quiz, ok)
	}
	// Answering a different id or an out-of-range choice fails cleanly and
	// leaves the quiz pending.
	if _, err := s.AnswerQuiz("q-install", 0); err == nil {
		t.Fatal("answered a quiz that is not pending")
	}
	if _, err := s.AnswerQuiz("q-diagnosis", 99); err == nil {
		t.Fatal("out-of-range choice accepted")
	}
	if _, ok := s.PendingQuiz(); !ok {
		t.Fatal("failed answers consumed the pending quiz")
	}
	if _, err := s.AnswerQuiz("q-diagnosis", 1); err != nil {
		t.Fatal(err)
	}
	// The quiz is now locked: re-examining must not re-ask it.
	Apply(s, Action{Kind: "examine", Object: "computer"})
	if _, ok := s.PendingQuiz(); ok {
		t.Fatal("answered quiz was re-asked")
	}

	// Selected-item interactions: arming an item turns the next click into
	// a use, then disarms.
	if err := s.SelectItem("coin"); err == nil {
		t.Fatal("selected an item the player does not carry")
	}
	Apply(s, Action{Kind: "take", Object: "desk-coin"})
	if !s.State().HasItem("coin") {
		t.Fatal("coin not taken")
	}
	if err := s.SelectItem("coin"); err != nil {
		t.Fatal(err)
	}
	if s.SelectedItem() != "coin" {
		t.Fatalf("selected = %q", s.SelectedItem())
	}
	Apply(s, Action{Kind: "click", Object: "computer"}) // use coin on computer → "does not work"
	if s.SelectedItem() != "" {
		t.Fatal("click did not consume the selection")
	}
	if got := s.LastMessage(); got != "The coin does not work on Computer." {
		t.Fatalf("use message = %q", got)
	}
	if !s.State().HasItem("coin") {
		t.Fatal("failed use consumed the coin")
	}
	// ClearSelection disarms without a click.
	if err := s.SelectItem("coin"); err != nil {
		t.Fatal(err)
	}
	s.ClearSelection()
	if s.SelectedItem() != "" {
		t.Fatal("ClearSelection left the item armed")
	}
}

func TestActionString(t *testing.T) {
	if got := (Action{Kind: "use", Object: "computer", Item: "ram"}).String(); got != "use ram on computer" {
		t.Errorf("use string = %q", got)
	}
	if got := (Action{Kind: "take", Object: "coin"}).String(); got != "take coin" {
		t.Errorf("take string = %q", got)
	}
}
