// Package repro reproduces "Using Interactive Video Technology for the
// Development of Game-Based Learning" (Chang, Hsu & Shih, ICPP Workshops
// 2007) as a complete Go system: an interactive-video substrate (synthetic
// footage, TKV1 codec, TKVC container, shot detection, playback), a
// headless UI toolkit, an event-scripting language, the VGBL document
// model, the authoring tool, the gaming platform runtime, simulated
// learners, analytics, baselines, an HTTP streaming layer, a telemetry
// ingestion service and a learner-fleet load generator.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the
// figure/table reproductions, and bench_test.go (this package) for the
// benchmark harness — one benchmark per experiment.
package repro
