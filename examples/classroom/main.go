// Classroom: the paper's §3.2 walkthrough, played step by step.
//
// "In a classroom in game, the NPC told players a computer was not worked
// and order players to fix it. Players examine the computer in video first
// and find a broken component inside. Finally, players move to another
// scenario, markets, to get the components they needed and return to
// classroom and fix the computer."
package main

import (
	"fmt"
	"log"

	"repro/internal/analytics"
	"repro/internal/content"
	"repro/internal/media/studio"
	"repro/internal/runtime"
)

func main() {
	blob, err := content.Classroom().BuildPackage(studio.Options{QStep: 8})
	if err != nil {
		log.Fatal(err)
	}
	col := &analytics.Collector{}
	s, err := runtime.NewSession(blob, runtime.Options{Observer: col})
	if err != nil {
		log.Fatal(err)
	}
	g := runtime.NewGameWindow(s)

	// The briefing runs on session start, before the first step.
	fmt.Println("== entering the classroom")
	for _, m := range s.Messages() {
		fmt.Println("  >", m)
	}

	step := func(title string, act func()) {
		fmt.Println("\n==", title)
		before := len(s.Messages())
		act()
		// A few seconds of video play between actions.
		for i := 0; i < 8; i++ {
			if err := s.Tick(); err != nil {
				log.Fatal(err)
			}
		}
		for _, m := range s.Messages()[before:] {
			fmt.Println("  >", m)
		}
		for {
			kind, c, ok := s.NextPopup()
			if !ok {
				break
			}
			fmt.Printf("  ** POPUP (%s): %s\n", kind, c)
		}
		// Sit the assessment quizzes the step triggered (we studied, so we
		// answer correctly).
		for {
			quiz, ok := s.PendingQuiz()
			if !ok {
				break
			}
			fmt.Printf("  ?? QUIZ: %s\n", quiz.Question)
			correct, err := s.AnswerQuiz(quiz.ID, quiz.Answer)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("     answered %q -> correct=%v\n", quiz.Choices[quiz.Answer], correct)
		}
	}

	step("talk to the teacher", func() { s.Talk("teacher"); s.Talk("teacher") })
	step("examine the computer", func() { s.Examine("computer") })
	step("pocket the coin on the desk", func() { s.Take("desk-coin") })
	step("walk to the market", func() { s.Click(140, 100) })
	step("ask the vendor", func() { s.Talk("vendor") })
	step("buy the RAM module (drag to backpack)", func() { s.Take("stall-ram") })
	step("return to the classroom", func() { s.Click(140, 100) })
	step("install the module", func() { s.UseItemOn("ram module", "computer") })

	fmt.Printf("\noutcome: %s\n", s.Outcome())
	fmt.Printf("inventory: %v\n", s.State().Inventory)
	fmt.Printf("knowledge: %v\n\n", s.State().LearnedUnits())
	fmt.Println(col.Digest("classroom"))

	g.Refresh()
	fmt.Println("final runtime interface (cf. paper Figure 2):")
	fmt.Println(g.Snapshot(120, 36))
}
