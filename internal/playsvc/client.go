package playsvc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/core"
	"repro/internal/media/raster"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/sim"
)

// ClientOptions configures a play-service client.
type ClientOptions struct {
	BaseURL string // server base, e.g. "http://127.0.0.1:8807"
	Course  string // published course name to create a session on
	// Resume reattaches to an existing (possibly frozen) session instead
	// of creating a new one: Dial sends a resume create and rebuilds the
	// mirror from the returned state and full transcript. Course may be
	// left empty; the reply names it.
	Resume string
	// Project is the course document (from the downloaded package); the
	// client resolves scenarios, objects and quizzes against it locally so
	// policies can plan without a round trip.
	Project *core.Project
	// Observer, when set, receives every remote event in arrival order —
	// the hook the fleet plugs its analytics collector and telemetry
	// client into, exactly as for a local session.
	Observer runtime.Observer
	// Trace, when valid, is injected into every request's X-Vgbl-Trace
	// header (a fresh child span per request), so the spans the gateway
	// and nodes record all link back to this client's trace id. The zero
	// value disables tracing; servers mint their own roots.
	Trace obs.TraceContext
	HTTP  *http.Client // defaults to http.DefaultClient
}

// Client drives one server-hosted session over HTTP. It implements
// sim.Game, so simulator policies (and sim.Replay) work against it
// unchanged. A Client mirrors the hosted session's state after every act;
// it is not safe for concurrent use — like a runtime.Session, one learner
// drives it.
type Client struct {
	opts ClientOptions
	id   string

	w, h, fps int
	tick      int
	state     *core.State
	messages  []string
	seen      int    // events forwarded to the observer so far
	quiz      string // pending quiz id ("" = none)

	frame raster.Frame // reusable fetched-frame buffer
	err   error        // sticky transport/session failure
}

// Interface check: the simulator must be able to drive a remote session
// exactly like a local one.
var _ sim.Game = (*Client)(nil)

// Dial creates a hosted session on the server and returns a client bound
// to it. Events emitted while entering the start scenario are delivered to
// the observer before Dial returns, mirroring runtime.NewSession.
func Dial(o ClientOptions) (*Client, error) {
	if o.BaseURL == "" || (o.Course == "" && o.Resume == "") {
		return nil, fmt.Errorf("playsvc: client needs BaseURL and a Course or Resume id")
	}
	if o.Project == nil {
		return nil, fmt.Errorf("playsvc: client needs the course Project")
	}
	if o.HTTP == nil {
		o.HTTP = http.DefaultClient
	}
	c := &Client{opts: o}
	reply, err := c.post(c.opts.BaseURL+CreatePath, &CreateRequest{Course: o.Course, Resume: o.Resume})
	if err != nil {
		return nil, err
	}
	c.id = reply.Session
	if reply.Course != "" {
		c.opts.Course = reply.Course
	}
	c.w, c.h, c.fps = reply.Width, reply.Height, reply.FPS
	c.apply(reply)
	return c, nil
}

// SessionID returns the server-issued session identifier.
func (c *Client) SessionID() string { return c.id }

// VideoMeta returns the hosted video's geometry (from the create reply).
func (c *Client) VideoMeta() (w, h, fps int) { return c.w, c.h, c.fps }

// Err returns the sticky failure ("" path errors like a wrong quiz answer
// id are returned to the caller instead and do not stick).
func (c *Client) Err() error { return c.err }

// apply folds a server reply into the client mirror and forwards unseen
// events to the observer.
func (c *Client) apply(r *Reply) {
	c.tick = r.Tick
	if r.State != nil {
		c.state = r.State
	}
	c.messages = append(c.messages, r.Messages...)
	c.quiz = r.Quiz
	if c.opts.Observer != nil {
		for _, e := range r.Events {
			c.opts.Observer.Record(e)
		}
	}
	c.seen = r.EventCount
}

// fail records a sticky failure: the session is gone or unreachable, so
// every later call fails fast with the same error.
func (c *Client) fail(err error) error {
	if c.err == nil {
		c.err = err
	}
	return err
}

// checkStatus turns a non-OK response into an error. Transport-level and
// server-side failures (5xx, 404) stick; a 400 is the caller's mistake
// (wrong quiz id, bad argument) and leaves the session usable. This rule
// is load-bearing for the fleet's failure model — every response path
// must go through here.
func (c *Client) checkStatus(resp *http.Response, what string) error {
	if resp.StatusCode == http.StatusOK {
		return nil
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	err := errf(resp.StatusCode, "playsvc: %s: %s: %s", what, resp.Status, bytes.TrimSpace(msg))
	if resp.StatusCode != http.StatusBadRequest {
		c.fail(err)
	}
	return err
}

// newRequest builds a request carrying the client's trace context (as a
// fresh child span) when one is configured.
func (c *Client) newRequest(method, url string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		return nil, err
	}
	if c.opts.Trace.Valid() {
		c.opts.Trace.Child().Inject(req.Header)
	}
	return req, nil
}

// post sends one JSON request and decodes the reply.
func (c *Client) post(url string, body any) (*Reply, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := c.newRequest(http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.opts.HTTP.Do(req)
	if err != nil {
		return nil, c.fail(err)
	}
	defer resp.Body.Close()
	if err := c.checkStatus(resp, "request"); err != nil {
		return nil, err
	}
	var r Reply
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		return nil, c.fail(err)
	}
	return &r, nil
}

// act posts one interaction and folds the reply in.
func (c *Client) act(req *ActRequest) (*Reply, error) {
	if c.err != nil {
		return nil, c.err
	}
	req.Session = c.id
	req.SeenEvents = c.seen
	req.SeenMessages = len(c.messages)
	r, err := c.post(c.opts.BaseURL+ActPath, req)
	if err != nil {
		return nil, err
	}
	c.apply(r)
	return r, nil
}

// Sync fetches the session view without acting on it, folding in — and
// thereby acknowledging — any event or message tail the server still
// retains. After a Sync the server holds no unacknowledged state for this
// client, which makes it the natural last call before a planned handoff.
func (c *Client) Sync() error {
	if c.err != nil {
		return c.err
	}
	url := fmt.Sprintf("%s%s?session=%s&events=%d&messages=%d",
		c.opts.BaseURL, StatePath, c.id, c.seen, len(c.messages))
	req, err := c.newRequest(http.MethodGet, url, nil)
	if err != nil {
		return c.fail(err)
	}
	resp, err := c.opts.HTTP.Do(req)
	if err != nil {
		return c.fail(err)
	}
	defer resp.Body.Close()
	if err := c.checkStatus(resp, "sync"); err != nil {
		return err
	}
	var r Reply
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		return c.fail(err)
	}
	c.apply(&r)
	return nil
}

// Project implements sim.Game.
func (c *Client) Project() *core.Project { return c.opts.Project }

// State implements sim.Game: the mirrored server-side state after the
// last act. Treat it as read-only.
func (c *Client) State() *core.State { return c.state }

// Scenario implements sim.Game.
func (c *Client) Scenario() *core.Scenario {
	return c.opts.Project.ScenarioByID(c.state.Scenario)
}

// Ended implements sim.Game.
func (c *Client) Ended() bool { return c.state.Ended }

// Outcome returns the end label ("" while running).
func (c *Client) Outcome() string { return c.state.Outcome }

// Ticks returns the hosted session's tick counter after the last act.
func (c *Client) Ticks() int { return c.tick }

// Messages implements sim.Game.
func (c *Client) Messages() []string {
	return append([]string(nil), c.messages...)
}

// PendingQuiz implements sim.Game.
func (c *Client) PendingQuiz() (*core.Quiz, bool) {
	if c.quiz == "" {
		return nil, false
	}
	q := c.opts.Project.QuizByID(c.quiz)
	return q, q != nil
}

// AnswerQuiz implements sim.Game.
func (c *Client) AnswerQuiz(quizID string, choice int) (bool, error) {
	r, err := c.act(&ActRequest{Kind: ActQuiz, Quiz: quizID, Choice: choice})
	if err != nil {
		return false, err
	}
	return r.Correct != nil && *r.Correct, nil
}

// Click implements sim.Game.
func (c *Client) Click(vx, vy int) { c.act(&ActRequest{Kind: ActClick, X: vx, Y: vy}) }

// Examine implements sim.Game.
func (c *Client) Examine(objectID string) { c.act(&ActRequest{Kind: ActExamine, Object: objectID}) }

// Talk implements sim.Game.
func (c *Client) Talk(objectID string) { c.act(&ActRequest{Kind: ActTalk, Object: objectID}) }

// Take implements sim.Game.
func (c *Client) Take(objectID string) bool {
	r, err := c.act(&ActRequest{Kind: ActTake, Object: objectID})
	return err == nil && r.Took != nil && *r.Took
}

// UseItemOn implements sim.Game.
func (c *Client) UseItemOn(item, objectID string) {
	c.act(&ActRequest{Kind: ActUse, Item: item, Object: objectID})
}

// SelectItem implements sim.Game.
func (c *Client) SelectItem(item string) error {
	_, err := c.act(&ActRequest{Kind: ActSelect, Item: item})
	return err
}

// ClearSelection implements sim.Game.
func (c *Client) ClearSelection() { c.act(&ActRequest{Kind: ActClear}) }

// GotoScenario implements sim.Game.
func (c *Client) GotoScenario(id string) error {
	_, err := c.act(&ActRequest{Kind: ActGoto, Object: id})
	return err
}

// Advance implements sim.Game: one round trip regardless of tick count.
func (c *Client) Advance(ticks int) error {
	if ticks <= 0 {
		return c.err
	}
	_, err := c.act(&ActRequest{Kind: ActTick, Ticks: ticks})
	return err
}

// Watch implements sim.Game: it fetches the current presentation frame
// into the client's reusable buffer (see Frame).
func (c *Client) Watch() error {
	_, err := c.Frame()
	return err
}

// Frame fetches the hosted session's presentation frame. The returned
// frame is client-owned and recycled by the next fetch.
func (c *Client) Frame() (*raster.Frame, error) {
	if c.err != nil {
		return nil, c.err
	}
	req, err := c.newRequest(http.MethodGet, c.opts.BaseURL+FramePath+"?session="+c.id, nil)
	if err != nil {
		return nil, c.fail(err)
	}
	resp, err := c.opts.HTTP.Do(req)
	if err != nil {
		return nil, c.fail(err)
	}
	defer resp.Body.Close()
	if err := c.checkStatus(resp, "frame"); err != nil {
		return nil, err
	}
	w, _ := strconv.Atoi(resp.Header.Get("X-Frame-Width"))
	h, _ := strconv.Atoi(resp.Header.Get("X-Frame-Height"))
	if tick := resp.Header.Get("X-Frame-Tick"); tick != "" {
		c.tick, _ = strconv.Atoi(tick)
	}
	n := 3 * w * h
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("playsvc: frame response missing geometry")
	}
	if cap(c.frame.Pix) < n {
		c.frame.Pix = make([]uint8, n)
	}
	c.frame.Pix = c.frame.Pix[:n]
	c.frame.W, c.frame.H = w, h
	if _, err := io.ReadFull(resp.Body, c.frame.Pix); err != nil {
		return nil, fmt.Errorf("playsvc: short frame body: %w", err)
	}
	return &c.frame, nil
}

// Close releases the hosted session (a "leave" act). Events emitted by the
// final interactions are still delivered to the observer. Closing an
// already-failed client still attempts the leave — if the session survived
// whatever broke the client, it should not linger until TTL eviction —
// and returns the sticky error.
func (c *Client) Close() error {
	if c.err == nil {
		_, err := c.act(&ActRequest{Kind: ActLeave})
		return err
	}
	sticky := c.err
	if resp, err := c.opts.HTTP.Post(c.opts.BaseURL+ActPath, "application/json",
		bytes.NewReader(mustJSON(&ActRequest{Session: c.id, Kind: ActLeave}))); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	return sticky
}

// mustJSON marshals a value that cannot fail (plain request structs).
func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}
