package playsvc

import (
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// Routes served by Manager.Handler. Mount the handler at "/play/" on a
// netstream.Server (or any mux).
const (
	CreatePath  = "/play/create"  // POST CreateRequest → Reply (create or resume)
	ActPath     = "/play/act"     // POST ActRequest → Reply (JSON debug surface)
	ActV2Path   = "/play/actv2"   // POST binary act frame → binary reply frame
	StatePath   = "/play/state"   // GET ?session=&events=N&messages=N → Reply
	FramePath   = "/play/frame"   // GET ?session=&advance=N → raw RGB bytes
	StatsPath   = "/play/stats"   // GET → Stats
	HandoffPath = "/play/handoff" // POST HandoffRequest → freeze one session to the shared store
	DrainPath   = "/play/drain"   // POST → freeze every session (graceful node removal)
	RecoverPath = "/play/recover" // POST HandoffRequest → thaw even from a checkpoint (crash recovery)
)

// Room routes, served by the same Manager.Handler (mount it at "/room/"
// alongside "/play/"). The room id doubles as the driven session's id, so
// a cluster gateway hashes watcher traffic onto the driver's node.
const (
	RoomCreatePath = "/room/create" // POST RoomCreateRequest → RoomCreateReply
	RoomJoinPath   = "/room/join"   // POST RoomJoinRequest → RoomJoinReply
	RoomWatchPath  = "/room/watch"  // GET ?room=&watcher=&events=&messages=&wait_ms=&stream=N → watch chunks
	RoomAnswerPath = "/room/answer" // POST RoomAnswerRequest → RoomAnswerReply
	RoomStatsPath  = "/room/stats"  // GET ?room= → RoomStats
	RoomLeavePath  = "/room/leave"  // POST RoomJoinRequest → unsubscribe
)

// Action kinds accepted by ActPath. "tick" advances playback; "leave"
// releases the session (the polite alternative to idle eviction).
const (
	ActClick   = "click"
	ActExamine = "examine"
	ActTalk    = "talk"
	ActTake    = "take"
	ActUse     = "use"
	ActSelect  = "select"
	ActClear   = "clear"
	ActQuiz    = "quiz"
	ActGoto    = "goto"
	ActTick    = "tick"
	ActLeave   = "leave"
)

// CreateRequest opens a server-hosted session on a published course, or —
// with Resume set — reattaches to a snapshotted one.
type CreateRequest struct {
	Course string `json:"course"`
	// Session optionally fixes the new session's id. Cluster gateways
	// assign ids up front so consistent-hash routing owns them; normal
	// clients leave it empty and let the server pick.
	Session string `json:"session,omitempty"`
	// Resume names a session to thaw instead of creating one: a session
	// frozen by the TTL janitor, a drain, or a node handoff (or still
	// live, in which case the server just reattaches). Course is ignored;
	// the reply repeats the course and video metadata.
	Resume string `json:"resume,omitempty"`
	// SeenEvents/SeenMessages scope a resume reply exactly like on an
	// act: a fresh client passes zero and receives the full transcript.
	SeenEvents   int `json:"seen_events,omitempty"`
	SeenMessages int `json:"seen_messages,omitempty"`

	// Trace is the request's trace context. It rides the X-Vgbl-Trace
	// header, not the JSON body; the HTTP handlers fill it in.
	Trace obs.TraceContext `json:"-"`
}

// HandoffRequest freezes one session into the shared snapshot store so
// another node can thaw it — the gateway's migration primitive.
type HandoffRequest struct {
	Session string `json:"session"`
}

// ActRequest applies one interaction to a hosted session.
type ActRequest struct {
	Session string `json:"session"`
	Kind    string `json:"kind"`
	Object  string `json:"object,omitempty"` // examine/talk/take/use/goto target
	Item    string `json:"item,omitempty"`   // use/select item
	X       int    `json:"x,omitempty"`      // click coordinates
	Y       int    `json:"y,omitempty"`
	Quiz    string `json:"quiz,omitempty"` // quiz id being answered
	Choice  int    `json:"choice"`
	Ticks   int    `json:"ticks,omitempty"` // tick count (default 1)
	// Seq is the client's per-session act sequence number (1, 2, 3…).
	// The server remembers the last applied seq and its reply: a retry of
	// an already-applied act (its response was lost in flight) returns the
	// cached reply instead of applying the act twice. Zero disables
	// deduplication (hand-written curl requests keep working).
	Seq int64 `json:"seq,omitempty"`
	// SeenEvents and SeenMessages tell the server how much of the session's
	// event log and say-transcript the client already holds; the reply
	// carries only the tails beyond these counts. SeenEvents is also an
	// acknowledgment: the server releases the acked event prefix, so a
	// long-lived session retains only unacknowledged events.
	SeenEvents   int `json:"seen_events,omitempty"`
	SeenMessages int `json:"seen_messages,omitempty"`

	// Trace is the request's trace context. It rides the X-Vgbl-Trace
	// header, not the JSON body; the HTTP handlers fill it in.
	Trace obs.TraceContext `json:"-"`
}

// BatchRequest applies a pipeline of acts to one session in a single
// round trip (the /play/actv2 payload, framed by EncodeActFrame). The
// batch applies atomically under the session lock, in order, stopping at
// the first act-level error. Act sequence numbers are implicit: act i
// carries BaseSeq+i, and the server deduplicates a retried batch on
// (BaseSeq, len(Acts)) — the reply was lost, not the work.
type BatchRequest struct {
	Session string
	// BaseSeq is the first act's sequence number (acts are BaseSeq..
	// BaseSeq+len(Acts)-1). Zero disables deduplication, as for ActRequest.
	BaseSeq int64
	// SeenEvents/SeenMessages acknowledge the tails the client already
	// folded in, exactly as on a single act; acknowledgment — and the
	// event-log compaction it permits — happens before any act applies.
	SeenEvents   int
	SeenMessages int
	// Acts are the interactions, in order. Only Kind, Object, Item, X, Y,
	// Quiz, Choice and Ticks are meaningful; per-act Session/Seq/Seen
	// fields are ignored. ActLeave is not batchable (400): a leave ends
	// the session and stays a single JSON act.
	Acts []ActRequest

	Trace obs.TraceContext
}

// ActResult is one act's result bits within a batch reply.
type ActResult struct {
	HasCorrect bool // act was a quiz answer
	Correct    bool
	HasTook    bool // act was a take
	Took       bool
}

func (r ActResult) bits() byte {
	var b byte
	if r.HasCorrect {
		b |= resHasCorrect
	}
	if r.Correct {
		b |= resCorrect
	}
	if r.HasTook {
		b |= resHasTook
	}
	if r.Took {
		b |= resTook
	}
	return b
}

func resultFromBits(b byte) ActResult {
	return ActResult{
		HasCorrect: b&resHasCorrect != 0,
		Correct:    b&resCorrect != 0,
		HasTook:    b&resHasTook != 0,
		Took:       b&resTook != 0,
	}
}

// BatchReply is the server's answer to a BatchRequest: one result per
// applied act plus a single coalesced state/event/message tail (the
// Reply), assembled once after the whole batch.
type BatchReply struct {
	Reply *Reply
	// Results has one entry per successfully applied act, in order.
	Results []ActResult
	// ActErr, when set, is the act-level error that stopped the batch:
	// acts [0,len(Results)) applied, act len(Results) failed, and any
	// later acts never ran. It rides inside a 200 response — the batch
	// request itself succeeded — so HTTP-level statuses keep meaning
	// "session-level failure" (404 gone, 503 draining, 429 shed) and the
	// gateway's healing logic stays status-driven.
	ActErr *Error
}

// Reply is the server's view of a hosted session after an operation. State
// is a deep copy, and Events/Messages are the unseen tails, so a Reply is
// self-contained: it stays valid after the session moves on.
type Reply struct {
	Session string `json:"session"`
	Course  string `json:"course,omitempty"` // set on create
	Width   int    `json:"w,omitempty"`      // video metadata, set on create
	Height  int    `json:"h,omitempty"`
	FPS     int    `json:"fps,omitempty"`

	Tick         int             `json:"tick"`
	State        *core.State     `json:"state"`
	Events       []runtime.Event `json:"events,omitempty"`
	Messages     []string        `json:"messages,omitempty"`
	EventCount   int             `json:"event_count"`    // total events so far
	MessageCount int             `json:"message_count"`  // total messages so far
	Quiz         string          `json:"quiz,omitempty"` // pending quiz id

	Correct *bool `json:"correct,omitempty"` // quiz act result
	Took    *bool `json:"took,omitempty"`    // take act result

	// Resumed marks a reply produced by a resume create.
	Resumed bool `json:"resumed,omitempty"`
}

// RoomCreateRequest opens a shared session: a hosted session whose id is
// the room id, with a broadcast hub attached. The creator becomes the
// driver (it acts through the normal /play/* paths using the room id as
// the session id).
type RoomCreateRequest struct {
	Course string `json:"course"`
	// Room optionally fixes the room id; gateways mint one so the ring
	// owns it. A retried create of an existing room reattaches.
	Room string `json:"room,omitempty"`

	Trace obs.TraceContext `json:"-"`
}

// RoomCreateReply names the new room and repeats the course metadata the
// driver and watchers need.
type RoomCreateReply struct {
	Room   string `json:"room"`
	Course string `json:"course"`
	Width  int    `json:"w"`
	Height int    `json:"h"`
	FPS    int    `json:"fps"`
	Seq    int64  `json:"seq"` // publication sequence (1 = the create frame)
	Tick   int    `json:"tick"`
}

// RoomJoinRequest subscribes a watcher to a room (or, on RoomLeavePath,
// unsubscribes it).
type RoomJoinRequest struct {
	Room string `json:"room"`
	// Watcher optionally fixes the watcher id (a retried join with the
	// same id reattaches); empty lets the server pick.
	Watcher string `json:"watcher,omitempty"`

	Trace obs.TraceContext `json:"-"`
}

// RoomJoinReply is the watcher's catch-up snapshot: the current state plus
// the retained event/message tails, so the first watch chunk only has to
// carry what happens next.
type RoomJoinReply struct {
	Room    string `json:"room"`
	Watcher string `json:"watcher"`
	Course  string `json:"course"`
	Width   int    `json:"w"`
	Height  int    `json:"h"`
	FPS     int    `json:"fps"`

	Seq          int64           `json:"seq"`
	Tick         int             `json:"tick"`
	State        *core.State     `json:"state"`
	EventStart   int             `json:"event_start"` // absolute index of Events[0]
	Events       []runtime.Event `json:"events,omitempty"`
	EventCount   int             `json:"event_count"`
	MessageStart int             `json:"message_start"`
	Messages     []string        `json:"messages,omitempty"`
	MessageCount int             `json:"message_count"`
	Quiz         string          `json:"quiz,omitempty"`
}

// RoomAnswerRequest records one watcher's answer to a quiz the room has
// seen pending. Cohort answers are assessment data: they never touch the
// driven session.
type RoomAnswerRequest struct {
	Room    string `json:"room"`
	Watcher string `json:"watcher"`
	Quiz    string `json:"quiz"`
	Choice  int    `json:"choice"`

	Trace obs.TraceContext `json:"-"`
}

// RoomAnswerReply confirms the recorded answer and shows the cohort tally.
type RoomAnswerReply struct {
	Room    string `json:"room"`
	Quiz    string `json:"quiz"`
	Correct bool   `json:"correct"`
	Answers int    `json:"answers"` // distinct watchers who answered
	Votes   []int  `json:"votes"`   // per-choice counts
}

// RoomQuizTally is one question's cohort outcome in a RoomStats snapshot.
type RoomQuizTally struct {
	Quiz    string `json:"quiz"`
	Answers int    `json:"answers"`
	Correct int    `json:"correct"` // votes on the correct choice
	Votes   []int  `json:"votes"`
}

// RoomStats is the /room/stats payload for one room.
type RoomStats struct {
	Room      string          `json:"room"`
	Watchers  int             `json:"watchers"`
	Seq       int64           `json:"seq"`
	Tick      int             `json:"tick"`
	Renders   int64           `json:"renders"`   // exactly one per publication
	Delivered int64           `json:"delivered"` // frames handed to watchers
	Skipped   int64           `json:"skipped"`   // frames dropped from watcher rings
	Answers   int64           `json:"answers"`
	Quiz      string          `json:"quiz,omitempty"` // currently pending
	Quizzes   []RoomQuizTally `json:"quizzes,omitempty"`
}

// Error is a protocol error carrying the HTTP status the handlers answer
// with (and that Client saw when the server produced it).
type Error struct {
	Status int
	Msg    string
	// RetryAfter, when positive, is the server's advertised backoff in
	// whole seconds (a 429/503 load-shed answer). The HTTP handlers emit
	// it as a Retry-After header; clients honor it instead of jittering.
	RetryAfter int
}

// Error implements error.
func (e *Error) Error() string { return e.Msg }

func errf(status int, format string, args ...any) *Error {
	return &Error{Status: status, Msg: fmt.Sprintf(format, args...)}
}

// httpStatus maps an error to a response code (500 for non-protocol errors).
func httpStatus(err error) int {
	if pe, ok := err.(*Error); ok {
		return pe.Status
	}
	return http.StatusInternalServerError
}
