package vcodec

import "repro/internal/media/raster"

// plane is a single-component image with dimensions padded to multiples of
// the block size. Samples are int32 so residuals (which go negative) share
// the representation.
type plane struct {
	w, h int // padded dimensions, multiples of blockSize
	pix  []int32
}

func newPlane(w, h int) *plane {
	return &plane{w: w, h: h, pix: make([]int32, w*h)}
}

func padUp(n int) int {
	return (n + blockSize - 1) / blockSize * blockSize
}

func (p *plane) at(x, y int) int32 {
	return p.pix[y*p.w+x]
}

func (p *plane) set(x, y int, v int32) {
	p.pix[y*p.w+x] = v
}

func clamp255(v int32) int32 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return v
}

// ycbcr holds one frame in planar YCbCr 4:2:0: full-resolution luma, chroma
// subsampled 2× in both directions. All planes are padded to block
// multiples; the true frame size travels separately.
type ycbcr struct {
	y, cb, cr *plane
	w, h      int // true (unpadded) frame dimensions
}

// toYCbCr converts an RGB frame to padded planar 4:2:0 using BT.601 integer
// coefficients. Padding replicates the edge sample so the DCT does not see
// an artificial cliff at the border.
func toYCbCr(f *raster.Frame) *ycbcr {
	pw, ph := padUp(f.W), padUp(f.H)
	cw, ch := padUp((f.W+1)/2), padUp((f.H+1)/2)
	out := &ycbcr{y: newPlane(pw, ph), cb: newPlane(cw, ch), cr: newPlane(cw, ch), w: f.W, h: f.H}
	// Full-resolution conversion with edge replication for padding.
	fullCb := make([]int32, pw*ph)
	fullCr := make([]int32, pw*ph)
	for y := 0; y < ph; y++ {
		sy := y
		if sy >= f.H {
			sy = f.H - 1
		}
		for x := 0; x < pw; x++ {
			sx := x
			if sx >= f.W {
				sx = f.W - 1
			}
			i := 3 * (sy*f.W + sx)
			r, g, b := int32(f.Pix[i]), int32(f.Pix[i+1]), int32(f.Pix[i+2])
			yy := (77*r + 150*g + 29*b) >> 8
			cb := ((-43*r - 85*g + 128*b) >> 8) + 128
			cr := ((128*r - 107*g - 21*b) >> 8) + 128
			out.y.set(x, y, clamp255(yy))
			fullCb[y*pw+x] = clamp255(cb)
			fullCr[y*pw+x] = clamp255(cr)
		}
	}
	// 2×2 box subsample chroma, then replicate-pad to the chroma plane.
	halfW, halfH := (f.W+1)/2, (f.H+1)/2
	for y := 0; y < ch; y++ {
		sy := y
		if sy >= halfH {
			sy = halfH - 1
		}
		for x := 0; x < cw; x++ {
			sx := x
			if sx >= halfW {
				sx = halfW - 1
			}
			x0, y0 := 2*sx, 2*sy
			x1, y1 := x0+1, y0+1
			if x1 >= pw {
				x1 = x0
			}
			if y1 >= ph {
				y1 = y0
			}
			cb := (fullCb[y0*pw+x0] + fullCb[y0*pw+x1] + fullCb[y1*pw+x0] + fullCb[y1*pw+x1] + 2) / 4
			cr := (fullCr[y0*pw+x0] + fullCr[y0*pw+x1] + fullCr[y1*pw+x0] + fullCr[y1*pw+x1] + 2) / 4
			out.cb.set(x, y, cb)
			out.cr.set(x, y, cr)
		}
	}
	return out
}

// toFrame converts back to RGB, upsampling chroma bilinearly (nearest-
// neighbor leaves visible blockiness on saturated gradients, especially at
// small frame sizes).
func (img *ycbcr) toFrame() *raster.Frame {
	f := raster.New(img.w, img.h)
	halfW, halfH := (img.w+1)/2, (img.h+1)/2
	sample := func(p *plane, xf, yf float64) int32 {
		x0 := int(xf)
		y0 := int(yf)
		tx := xf - float64(x0)
		ty := yf - float64(y0)
		x1, y1 := x0+1, y0+1
		if x1 >= halfW {
			x1 = halfW - 1
		}
		if y1 >= halfH {
			y1 = halfH - 1
		}
		a := float64(p.at(x0, y0))*(1-tx) + float64(p.at(x1, y0))*tx
		b := float64(p.at(x0, y1))*(1-tx) + float64(p.at(x1, y1))*tx
		return int32(a*(1-ty) + b*ty + 0.5)
	}
	for y := 0; y < img.h; y++ {
		yf := (float64(y) - 0.5) / 2
		if yf < 0 {
			yf = 0
		}
		if yf > float64(halfH-1) {
			yf = float64(halfH - 1)
		}
		for x := 0; x < img.w; x++ {
			xf := (float64(x) - 0.5) / 2
			if xf < 0 {
				xf = 0
			}
			if xf > float64(halfW-1) {
				xf = float64(halfW - 1)
			}
			yy := img.y.at(x, y)
			cb := sample(img.cb, xf, yf) - 128
			cr := sample(img.cr, xf, yf) - 128
			r := yy + (359 * cr >> 8)
			g := yy - (88 * cb >> 8) - (183 * cr >> 8)
			b := yy + (454 * cb >> 8)
			i := 3 * (y*f.W + x)
			f.Pix[i] = uint8(clamp255(r))
			f.Pix[i+1] = uint8(clamp255(g))
			f.Pix[i+2] = uint8(clamp255(b))
		}
	}
	return f
}

// clone deep-copies the image (used for reference frames).
func (img *ycbcr) clone() *ycbcr {
	cp := func(p *plane) *plane {
		q := newPlane(p.w, p.h)
		copy(q.pix, p.pix)
		return q
	}
	return &ycbcr{y: cp(img.y), cb: cp(img.cb), cr: cp(img.cr), w: img.w, h: img.h}
}
