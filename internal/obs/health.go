package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Health is the shared /healthz readiness handler: a fixed status+uptime
// preamble plus whatever live fields the owning service contributes
// (telemetry adds queue saturation and pending batches, play nodes add
// live-session counts). Field order is Set order, so payloads are stable
// for tests and humans alike.
type Health struct {
	started time.Time

	mu     sync.Mutex
	keys   []string
	fields map[string]func() any
}

// NewHealth starts the uptime clock.
func NewHealth() *Health {
	return &Health{started: time.Now(), fields: map[string]func() any{}}
}

// Set adds (or replaces) one readiness field, evaluated per request.
// It returns h for chaining.
func (h *Health) Set(key string, fn func() any) *Health {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.fields[key]; !ok {
		h.keys = append(h.keys, key)
	}
	h.fields[key] = fn
	return h
}

// ServeHTTP implements http.Handler, answering
// {"status":"ok","uptime_seconds":...,<fields...>}.
func (h *Health) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	keys := append([]string(nil), h.keys...)
	fns := make([]func() any, len(keys))
	for i, k := range keys {
		fns[i] = h.fields[k]
	}
	h.mu.Unlock()

	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"status":"ok","uptime_seconds":%.1f`, time.Since(h.started).Seconds())
	for i, k := range keys {
		v, err := json.Marshal(fns[i]())
		if err != nil {
			v = []byte(`"` + err.Error() + `"`)
		}
		fmt.Fprintf(w, `,%q:%s`, k, v)
	}
	fmt.Fprintln(w, "}")
}
