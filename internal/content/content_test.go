package content

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gamepack"
	"repro/internal/media/studio"
)

func TestAllCoursesValidate(t *testing.T) {
	for _, c := range []struct {
		name   string
		course *Course
	}{
		{"classroom", Classroom()},
		{"museum", Museum()},
		{"street", StreetDemo()},
	} {
		probs := c.course.Project.Validate(c.course.SegmentNames())
		for _, p := range probs {
			if p.Severity == core.Error {
				t.Errorf("%s: %s", c.name, p)
			}
		}
		if _, err := c.course.Project.CompileEvents(); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

func TestChaptersTileFilms(t *testing.T) {
	for _, course := range []*Course{Classroom(), Museum(), StreetDemo()} {
		if course.Chapters[0].Start != 0 {
			t.Error("first chapter must start at 0")
		}
		for i := 1; i < len(course.Chapters); i++ {
			if course.Chapters[i].Start != course.Chapters[i-1].End {
				t.Errorf("%s: chapter gap at %d", course.Project.Title, i)
			}
		}
		last := course.Chapters[len(course.Chapters)-1]
		if last.End != course.Film.FrameCount() {
			t.Errorf("%s: chapters end at %d, film has %d frames",
				course.Project.Title, last.End, course.Film.FrameCount())
		}
	}
}

func TestEveryScenarioHasASegmentChapter(t *testing.T) {
	for _, course := range []*Course{Classroom(), Museum(), StreetDemo()} {
		names := map[string]bool{}
		for _, ch := range course.Chapters {
			names[ch.Name] = true
		}
		for _, s := range course.Project.Scenarios {
			if !names[s.Segment] {
				t.Errorf("%s: scenario %q references missing segment %q",
					course.Project.Title, s.ID, s.Segment)
			}
		}
	}
}

func TestBuildPackageRoundTrip(t *testing.T) {
	course := Classroom()
	blob, err := course.BuildPackage(studio.Options{QStep: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := gamepack.Open(blob)
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Project.Title != course.Project.Title {
		t.Error("project lost in package round trip")
	}
	if len(pkg.Video) == 0 {
		t.Error("video missing from package")
	}
}

func TestCoursesAreDeterministic(t *testing.T) {
	a, _ := Classroom().RecordVideo(studio.Options{QStep: 8})
	b, _ := Classroom().RecordVideo(studio.Options{QStep: 8})
	if string(a) != string(b) {
		t.Error("classroom video not deterministic")
	}
}
