package script

// Program is a compiled script ready to run.
type Program struct {
	stmts  []stmt
	Source string
}

// Compile lexes and parses src. Errors carry line:col positions.
func Compile(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmts, err := p.block(tokEOF)
	if err != nil {
		return nil, err
	}
	return &Program{stmts: stmts, Source: src}, nil
}

// MustCompile is Compile that panics on error; for statically known scripts
// in examples and tests.
func MustCompile(src string) *Program {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

// Empty reports whether the program has no statements.
func (p *Program) Empty() bool { return p == nil || len(p.stmts) == 0 }

// actionVerbs are the single-argument effect statements. The argument is an
// expression so designers can write computed messages
// (`say "score: " + score;`).
var actionVerbs = map[string]bool{
	"say": true, "give": true, "take": true, "goto": true,
	"reward": true, "learn": true, "enable": true, "disable": true,
	"end": true, "open": true, "quiz": true,
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.cur()
	if t.kind != k {
		return t, errAt(t.line, t.col, "expected %v, found %v", k, t.kind)
	}
	p.pos++
	return t, nil
}

// block parses statements until the given terminator (tokRBrace or tokEOF).
func (p *parser) block(end tokenKind) ([]stmt, error) {
	var out []stmt
	for p.cur().kind != end {
		if p.cur().kind == tokEOF {
			t := p.cur()
			return nil, errAt(t.line, t.col, "unexpected end of script (missing '}')")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	p.pos++ // consume terminator
	return out, nil
}

func (p *parser) statement() (stmt, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return nil, errAt(t.line, t.col, "expected a statement, found %v", t.kind)
	}
	switch {
	case t.text == "if":
		return p.ifStatement()
	case t.text == "set":
		p.pos++
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokAssign); err != nil {
			return nil, err
		}
		val, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return &setStmt{name: name.text, value: val, line: t.line, col: t.col}, nil
	case t.text == "setflag":
		p.pos++
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		val, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return &setFlagStmt{name: name.text, value: val, line: t.line, col: t.col}, nil
	case t.text == "popup":
		p.pos++
		kind, err := p.expression()
		if err != nil {
			return nil, err
		}
		content, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return &popupStmt{kind: kind, content: content, line: t.line, col: t.col}, nil
	case actionVerbs[t.text]:
		p.pos++
		arg, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return &actionStmt{verb: t.text, arg: arg, line: t.line, col: t.col}, nil
	default:
		return nil, errAt(t.line, t.col, "unknown statement %q", t.text)
	}
}

func (p *parser) ifStatement() (stmt, error) {
	t := p.next() // 'if'
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	then, err := p.block(tokRBrace)
	if err != nil {
		return nil, err
	}
	var els []stmt
	if p.cur().kind == tokIdent && p.cur().text == "else" {
		p.pos++
		if p.cur().kind == tokIdent && p.cur().text == "if" {
			nested, err := p.ifStatement()
			if err != nil {
				return nil, err
			}
			els = []stmt{nested}
		} else {
			if _, err := p.expect(tokLBrace); err != nil {
				return nil, err
			}
			els, err = p.block(tokRBrace)
			if err != nil {
				return nil, err
			}
		}
	}
	return &ifStmt{cond: cond, then: then, els: els, line: t.line, col: t.col}, nil
}

// Operator precedence, loosest first: || < && < comparison < additive <
// multiplicative < unary.
func precedence(k tokenKind) int {
	switch k {
	case tokOr:
		return 1
	case tokAnd:
		return 2
	case tokEq, tokNeq, tokLt, tokLe, tokGt, tokGe:
		return 3
	case tokPlus, tokMinus:
		return 4
	case tokStar, tokSlash, tokPercent:
		return 5
	}
	return 0
}

func (p *parser) expression() (expr, error) {
	return p.binary(1)
}

func (p *parser) binary(minPrec int) (expr, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur()
		prec := precedence(op.kind)
		if prec < minPrec {
			return left, nil
		}
		p.pos++
		right, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		left = &binaryExpr{op: op.kind, left: left, right: right, line: op.line, col: op.col}
	}
}

func (p *parser) unary() (expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNot, tokMinus:
		p.pos++
		operand, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &unaryExpr{op: t.kind, operand: operand, line: t.line, col: t.col}, nil
	}
	return p.primary()
}

func (p *parser) primary() (expr, error) {
	t := p.next()
	switch t.kind {
	case tokInt:
		return &intLit{v: t.num, line: t.line, col: t.col}, nil
	case tokString:
		return &strLit{v: t.text, line: t.line, col: t.col}, nil
	case tokLParen:
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		switch t.text {
		case "true":
			return &boolLit{v: true, line: t.line, col: t.col}, nil
		case "false":
			return &boolLit{v: false, line: t.line, col: t.col}, nil
		case "has", "flag":
			if _, err := p.expect(tokLParen); err != nil {
				return nil, err
			}
			arg, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return &callExpr{fn: t.text, arg: arg, line: t.line, col: t.col}, nil
		default:
			return &varRef{name: t.text, line: t.line, col: t.col}, nil
		}
	default:
		return nil, errAt(t.line, t.col, "expected an expression, found %v", t.kind)
	}
}
