package vcodec

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/media/raster"
	"repro/internal/media/synth"
)

func testFilm(t testing.TB) *synth.Film {
	t.Helper()
	return synth.Generate(synth.Spec{
		W: 96, H: 64, FPS: 12,
		Shots: 3, MinShotFrames: 8, MaxShotFrames: 12,
		NoiseAmp: 1, Seed: 99,
	})
}

func encCfg(w, h int) Config {
	return Config{Width: w, Height: h, QStep: 4, GOP: 8, SearchRange: 3, Workers: 2}
}

func TestDCTRoundTrip(t *testing.T) {
	var src, freq, back [64]float64
	for i := range src {
		src[i] = float64((i*37)%256) - 128
	}
	fdct8x8(&src, &freq)
	idct8x8(&freq, &back)
	for i := range src {
		if math.Abs(src[i]-back[i]) > 1e-9 {
			t.Fatalf("DCT round trip error at %d: %f vs %f", i, src[i], back[i])
		}
	}
}

func TestDCTConstantBlockIsDCOnly(t *testing.T) {
	var src, freq [64]float64
	for i := range src {
		src[i] = 42
	}
	fdct8x8(&src, &freq)
	if math.Abs(freq[0]-42*8) > 1e-9 {
		t.Errorf("DC = %f, want 336", freq[0])
	}
	for i := 1; i < 64; i++ {
		if math.Abs(freq[i]) > 1e-9 {
			t.Fatalf("AC coefficient %d = %f, want 0", i, freq[i])
		}
	}
}

func TestZigzagIsPermutation(t *testing.T) {
	seen := [64]bool{}
	for _, p := range zigzag {
		if p < 0 || p >= 64 || seen[p] {
			t.Fatalf("zigzag invalid at position %d", p)
		}
		seen[p] = true
	}
	// Starts at DC, ends at the highest frequency.
	if zigzag[0] != 0 || zigzag[63] != 63 {
		t.Errorf("zigzag endpoints %d..%d", zigzag[0], zigzag[63])
	}
	if zigzag[1] != 1 || zigzag[2] != 8 {
		t.Errorf("zigzag start order wrong: %v", zigzag[:4])
	}
}

func TestQuantizeRoundTripLowQ(t *testing.T) {
	var coefs [64]float64
	for i := range coefs {
		coefs[i] = float64(i*7 - 200)
	}
	var levels [64]int32
	quantize(&coefs, 1, &levels)
	var back [64]float64
	dequantize(&levels, 1, &back)
	for i := range coefs {
		if math.Abs(coefs[i]-back[i]) > 0.51 {
			t.Fatalf("q=1 round trip error %f at %d", coefs[i]-back[i], i)
		}
	}
}

func TestLevelsCodingRoundTrip(t *testing.T) {
	err := quick.Check(func(vals [8]int16, positions [8]uint8) bool {
		var levels [64]int32
		for i := range vals {
			levels[positions[i]%64] = int32(vals[i])
		}
		var w byteWriter
		writeLevels(&w, &levels)
		var got [64]int32
		r := &byteReader{buf: w.buf}
		if err := readLevels(r, &got); err != nil {
			return false
		}
		return got == levels && r.remaining() == 0
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestLevelsAllZeroIsOneByte(t *testing.T) {
	var levels [64]int32
	var w byteWriter
	writeLevels(&w, &levels)
	if len(w.buf) != 1 {
		t.Errorf("all-zero block coded in %d bytes, want 1", len(w.buf))
	}
}

func TestReadLevelsRejectsCorrupt(t *testing.T) {
	cases := [][]byte{
		{},               // empty
		{200},            // pair count > 64
		{1},              // missing pair
		{1, 70, 2},       // run beyond block
		{2, 0, 2, 63, 2}, // second pair out of range
		{1, 0, 0},        // explicit zero level
	}
	for i, c := range cases {
		var levels [64]int32
		if err := readLevels(&byteReader{buf: c}, &levels); err == nil {
			t.Errorf("case %d: corrupt stream accepted", i)
		}
	}
}

func TestYCbCrRoundTripApprox(t *testing.T) {
	f := raster.New(33, 17) // odd size exercises padding + subsampling
	f.FillVGradient(raster.RGB{R: 200, G: 60, B: 40}, raster.RGB{R: 20, G: 80, B: 180})
	g := toYCbCr(f).toFrame()
	if g.W != f.W || g.H != f.H {
		t.Fatalf("size changed: %dx%d", g.W, g.H)
	}
	// 4:2:0 is lossy in chroma; luma should survive well. Allow moderate MAD.
	if mad := raster.MAD(f, g); mad > 12 {
		t.Errorf("YCbCr 4:2:0 round trip MAD = %f, too lossy", mad)
	}
}

func TestEncodeDecodeIntraQuality(t *testing.T) {
	film := testFilm(t)
	src := film.Render(0)
	enc, err := NewEncoder(Config{Width: src.W, Height: src.H, QStep: 2, GOP: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := enc.Encode(src)
	if err != nil {
		t.Fatal(err)
	}
	if pkt.Type != IFrame {
		t.Fatalf("first frame type = %v, want I", pkt.Type)
	}
	dec := NewDecoder(2)
	got, err := dec.Decode(pkt.Data)
	if err != nil {
		t.Fatal(err)
	}
	if p := raster.PSNR(src, got); p < 30 {
		t.Errorf("I-frame PSNR = %.1f dB at q=2, want >= 30", p)
	}
}

func TestGOPPattern(t *testing.T) {
	film := testFilm(t)
	enc, _ := NewEncoder(encCfg(96, 64))
	for i := 0; i < 20; i++ {
		pkt, err := enc.Encode(film.Render(i % film.FrameCount()))
		if err != nil {
			t.Fatal(err)
		}
		wantI := i%8 == 0
		if (pkt.Type == IFrame) != wantI {
			t.Fatalf("frame %d type = %v, want I=%v", i, pkt.Type, wantI)
		}
		if pkt.Index != i {
			t.Fatalf("packet index = %d, want %d", pkt.Index, i)
		}
	}
}

func TestPFramesSmallerOnStaticContent(t *testing.T) {
	// A static scene: P-frames should collapse to mostly skip blocks.
	f := raster.New(96, 64)
	f.FillVGradient(raster.Blue, raster.Black)
	enc, _ := NewEncoder(encCfg(96, 64))
	i0, _ := enc.Encode(f)
	p1, _ := enc.Encode(f)
	if len(p1.Data) >= len(i0.Data)/4 {
		t.Errorf("static P-frame %dB vs I-frame %dB: P should be <25%%", len(p1.Data), len(i0.Data))
	}
}

func TestDecodeSequenceMatchesEncoderReference(t *testing.T) {
	film := testFilm(t)
	enc, _ := NewEncoder(encCfg(96, 64))
	dec := NewDecoder(1)
	for i := 0; i < 16; i++ {
		src := film.Render(i)
		pkt, err := enc.Encode(src)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.Decode(pkt.Data)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if p := raster.PSNR(src, got); p < 24 {
			t.Errorf("frame %d PSNR %.1f dB too low (drift?)", i, p)
		}
	}
}

func TestDecoderWorkerCountIrrelevant(t *testing.T) {
	film := testFilm(t)
	enc, _ := NewEncoder(encCfg(96, 64))
	var pkts []Packet
	for i := 0; i < 10; i++ {
		p, _ := enc.Encode(film.Render(i))
		pkts = append(pkts, p)
	}
	d1, d4 := NewDecoder(1), NewDecoder(4)
	for i, p := range pkts {
		a, err1 := d1.Decode(p.Data)
		b, err2 := d4.Decode(p.Data)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !a.Equal(b) {
			t.Fatalf("frame %d differs between 1 and 4 decode workers", i)
		}
	}
}

func TestEncoderWorkerCountIrrelevant(t *testing.T) {
	film := testFilm(t)
	cfg := encCfg(96, 64)
	cfg.Workers = 1
	e1, _ := NewEncoder(cfg)
	cfg.Workers = 4
	e4, _ := NewEncoder(cfg)
	for i := 0; i < 6; i++ {
		src := film.Render(i)
		p1, _ := e1.Encode(src)
		p4, _ := e4.Encode(src)
		if string(p1.Data) != string(p4.Data) {
			t.Fatalf("frame %d bitstream differs across encoder worker counts", i)
		}
	}
}

func TestPFrameWithoutReferenceFails(t *testing.T) {
	film := testFilm(t)
	enc, _ := NewEncoder(encCfg(96, 64))
	enc.Encode(film.Render(0))           // I
	pkt, _ := enc.Encode(film.Render(1)) // P
	dec := NewDecoder(1)
	if _, err := dec.Decode(pkt.Data); err == nil {
		t.Fatal("decoding P-frame without reference should fail")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	dec := NewDecoder(1)
	for _, data := range [][]byte{
		nil,
		[]byte("X"),
		[]byte("JUNKJUNKJUNK"),
		[]byte("TKV1\x07morejunk"), // bad frame type
	} {
		if _, err := dec.Decode(data); err == nil {
			t.Errorf("garbage %q accepted", data)
		}
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	film := testFilm(t)
	enc, _ := NewEncoder(encCfg(96, 64))
	pkt, _ := enc.Encode(film.Render(0))
	for _, n := range []int{5, 10, len(pkt.Data) / 2, len(pkt.Data) - 1} {
		dec := NewDecoder(2)
		if _, err := dec.Decode(pkt.Data[:n]); err == nil {
			t.Errorf("truncated packet (%d bytes) accepted", n)
		}
	}
}

func TestHigherQLowerQualitySmallerSize(t *testing.T) {
	film := testFilm(t)
	src := film.Render(4)
	var prevSize = 1 << 30
	var prevPSNR = math.Inf(1)
	for _, q := range []int{2, 6, 16} {
		enc, _ := NewEncoder(Config{Width: src.W, Height: src.H, QStep: q, GOP: 1, Workers: 1})
		pkt, _ := enc.Encode(src)
		dec := NewDecoder(1)
		rec, err := dec.Decode(pkt.Data)
		if err != nil {
			t.Fatal(err)
		}
		p := raster.PSNR(src, rec)
		if len(pkt.Data) >= prevSize {
			t.Errorf("q=%d size %d not smaller than previous %d", q, len(pkt.Data), prevSize)
		}
		if p >= prevPSNR {
			t.Errorf("q=%d PSNR %.1f not lower than previous %.1f", q, p, prevPSNR)
		}
		prevSize, prevPSNR = len(pkt.Data), p
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Width: 0, Height: 10, QStep: 4, GOP: 5},
		{Width: 10, Height: 10, QStep: 0, GOP: 5},
		{Width: 10, Height: 10, QStep: 400, GOP: 5},
		{Width: 10, Height: 10, QStep: 4, GOP: 0},
		{Width: 10, Height: 10, QStep: 4, GOP: 5, SearchRange: 9},
	}
	for i, c := range bad {
		if _, err := NewEncoder(c); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
}

func TestEncodeWrongSizeFrame(t *testing.T) {
	enc, _ := NewEncoder(encCfg(96, 64))
	if _, err := enc.Encode(raster.New(32, 32)); err == nil {
		t.Fatal("wrong-size frame accepted")
	}
}

func TestEncoderReset(t *testing.T) {
	film := testFilm(t)
	enc, _ := NewEncoder(encCfg(96, 64))
	enc.Encode(film.Render(0))
	enc.Encode(film.Render(1))
	enc.Reset()
	pkt, _ := enc.Encode(film.Render(2))
	if pkt.Type != IFrame || pkt.Index != 0 {
		t.Fatalf("after Reset got %v index %d, want I index 0", pkt.Type, pkt.Index)
	}
}

func TestParseHeader(t *testing.T) {
	film := testFilm(t)
	enc, _ := NewEncoder(encCfg(96, 64))
	i0, _ := enc.Encode(film.Render(0))
	p1, _ := enc.Encode(film.Render(1))
	if ft, err := ParseHeader(i0.Data); err != nil || ft != IFrame {
		t.Errorf("ParseHeader(I) = %v, %v", ft, err)
	}
	if ft, err := ParseHeader(p1.Data); err != nil || ft != PFrame {
		t.Errorf("ParseHeader(P) = %v, %v", ft, err)
	}
	if _, err := ParseHeader([]byte("nope")); err == nil {
		t.Error("ParseHeader accepted garbage")
	}
}

func TestMVPacking(t *testing.T) {
	for dx := -8; dx <= 7; dx++ {
		for dy := -8; dy <= 7; dy++ {
			gx, gy := unpackMV(packMV(dx, dy))
			if gx != dx || gy != dy {
				t.Fatalf("MV (%d,%d) round-tripped to (%d,%d)", dx, dy, gx, gy)
			}
		}
	}
}

func TestOddSizeFrames(t *testing.T) {
	// Non-multiple-of-8 and non-multiple-of-16 dimensions must round trip.
	for _, dims := range [][2]int{{37, 23}, {8, 8}, {9, 9}, {100, 50}} {
		w, h := dims[0], dims[1]
		src := raster.New(w, h)
		src.FillVGradient(raster.Green, raster.Magenta)
		src.FillCircle(w/2, h/2, min(w, h)/3, raster.Yellow)
		enc, err := NewEncoder(Config{Width: w, Height: h, QStep: 2, GOP: 1, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		pkt, err := enc.Encode(src)
		if err != nil {
			t.Fatalf("%dx%d: %v", w, h, err)
		}
		rec, err := NewDecoder(2).Decode(pkt.Data)
		if err != nil {
			t.Fatalf("%dx%d: %v", w, h, err)
		}
		if rec.W != w || rec.H != h {
			t.Fatalf("%dx%d: decoded size %dx%d", w, h, rec.W, rec.H)
		}
		// On this maximally saturated pattern the 4:2:0 chroma subsampling
		// dominates the loss; the right bar is "within 1.5 dB of the pure
		// colorspace round trip", not an absolute PSNR.
		bound := raster.PSNR(src, toYCbCr(src).toFrame())
		if p := raster.PSNR(src, rec); p < bound-1.5 {
			t.Errorf("%dx%d: PSNR %.1f dB, want within 1.5 dB of 4:2:0 bound %.1f", w, h, p, bound)
		}
	}
}
